"""Recovery attribution: phase decomposition, aborted spans, telemetry.

Covers the PR-7 observability layer end to end: phase markers along the
whole recovery arc reconcile exactly with ``RestartSpan.recovery_s``, a
second fault mid-recovery aborts-and-chains instead of corrupting the
timeline, ``ComposedFaults`` runs (kill + partition + store-replica
crash) keep every phase attributable with a clean audit, the
time-series sampler rings are bounded and exportable, and the ``repro
mttr`` CLI prints the decomposition.
"""

import json

import pytest

from repro.analysis.report import format_mttr, format_timeline
from repro.cli import main
from repro.ft.failure import ExplicitFaults, PartitionFaults, ServiceFaults
from repro.obs import (
    Metrics,
    RecoveryAttribution,
    TimeseriesSampler,
    chrome_trace,
    counter_events,
    recovery_timeline,
)
from repro.obs.timeline import quantile
from repro.runtime.config import DEFAULT_TESTBED
from repro.runtime.mpirun import run_job


def ring_prog(mpi, rounds=30, nbytes=2000, work=0.02):
    """Token ring (mirrors the fault-tolerance suite's workload)."""
    nxt = (mpi.rank + 1) % mpi.size
    prv = (mpi.rank - 1) % mpi.size
    token = [0]
    for _ in range(rounds):
        if mpi.rank == 0:
            yield from mpi.send(nxt, nbytes=nbytes, tag=0, data=list(token))
            msg = yield from mpi.recv(source=prv, tag=0)
            token = [msg.data[0] + 1] + msg.data[1:]
        else:
            msg = yield from mpi.recv(source=prv, tag=0)
            token = msg.data + [mpi.rank]
            yield from mpi.send(nxt, nbytes=nbytes, tag=0, data=token)
        yield from mpi.compute(seconds=work)
    return token


@pytest.fixture(scope="module")
def ckpt_faulty_run():
    """One kill on a checkpointing run: the full recovery arc fires."""
    return run_job(
        ring_prog, 4, device="v2", trace=True, seed=1, limit=600,
        params={"rounds": 60},
        checkpointing=True, ckpt_policy="random", ckpt_continuous=True,
        ckpt_interval=0.3,
        faults=ExplicitFaults([(1.0, 2)]),
        timeseries=0.25,
    )


# ------------------------------------------------- phase decomposition


def test_every_phase_marker_present(ckpt_faulty_run):
    att = RecoveryAttribution.from_trace(ckpt_faulty_run.tracer)
    assert len(att.completed) == 1 and not att.aborted
    s = att.completed[0]
    assert s.rank == 2
    assert s.detect_source == "socket"
    # every arc timestamp in order
    assert s.fault_t <= s.detect_t <= s.respawn_t
    assert s.respawn_t <= s.replay_start_t <= s.caught_up_t
    # restore-window sub-phases all fired
    assert s.fetch_start_t is not None and s.fetch_done_t is not None
    assert s.fetch_found is True and s.fetch_bytes > 0 and s.fetch_chunks > 0
    assert s.el_download_t is not None and s.el_events is not None
    assert s.resync_t is not None and s.resync_peers >= 1
    b = att.breakdown(s)
    assert set(b) == set(att.PHASES)
    assert all(b[p] is not None and b[p] >= 0 for p in att.PHASES)


def test_phase_sums_reconcile_exactly(ckpt_faulty_run):
    att = RecoveryAttribution.from_trace(ckpt_faulty_run.tracer)
    for s in att.completed:
        err = att.reconcile(s)
        assert err is not None and err < 1e-9
    assert att.as_dict()["max_reconcile_err_s"] < 1e-9


def test_mttr_and_phase_stats(ckpt_faulty_run):
    att = RecoveryAttribution.from_trace(ckpt_faulty_run.tracer)
    mttr = att.mttr()
    assert mttr["n"] == 1
    assert mttr["p50"] == mttr["p95"] == mttr["mean"] == mttr["max"]
    stats = att.phase_stats()
    assert set(stats) == set(att.PHASES)
    # detect + respawn are the configured dispatcher delays
    assert stats["detect"]["p50"] == pytest.approx(
        DEFAULT_TESTBED.restart_detect_delay
    )
    assert stats["respawn"]["p50"] == pytest.approx(
        DEFAULT_TESTBED.restart_spawn_delay
    )
    totals = att.totals()
    assert totals["fetch_bytes"] > 0 and totals["el_events"] > 0
    # the whole attribution round-trips through JSON
    json.dumps(att.as_dict())


def test_format_mttr_renders(ckpt_faulty_run):
    att = RecoveryAttribution.from_trace(ckpt_faulty_run.tracer)
    text = format_mttr(att)
    assert "per-fault phase decomposition" in text
    assert "detect" in text and "resync" in text and "replay" in text
    assert "reconcile" in text
    assert format_mttr(None).startswith("(no attribution")
    assert format_mttr(RecoveryAttribution([])).startswith("(no faults")


# ------------------------------------------- aborted spans / chaining


@pytest.fixture(scope="module")
def refault_run():
    """A second fault strikes rank 2 mid-recovery.

    The partition stalls incarnation 1's rejoin (its host is cut off
    right after the respawn), so the 3.0 s kill lands while the first
    arc is still open — and because the partitioned-but-alive daemon
    went heartbeat-quiet, the second detection is attributed to the
    heartbeat monitor, not the socket detector.
    """
    return run_job(
        ring_prog, 4, device="v2", trace=True, seed=3, limit=600,
        params={"rounds": 40, "work": 0.05},
        faults=[
            ExplicitFaults([(0.5, 2), (3.0, 2)]),
            PartitionFaults([(1.0, (2,), 3.0)]),
        ],
    )


def test_second_fault_aborts_and_chains(refault_run):
    att = RecoveryAttribution.from_trace(refault_run.tracer)
    assert len(att.spans) == 2
    first, second = att.spans
    assert first.aborted and first.aborted_by == "fault"
    assert first.aborted_t == pytest.approx(3.0)
    assert first.caught_up_t is None and first.recovery_s is None
    assert second.chained_from == first.incarnation == 1
    assert second.completed and second.incarnation == 2
    # aborted arcs never pollute the MTTR distribution
    assert att.mttr()["n"] == 1
    assert len(att.aborted) == 1 and len(att.incomplete) == 0


def test_detect_source_split(refault_run):
    att = RecoveryAttribution.from_trace(refault_run.tracer)
    first, second = att.spans
    assert first.detect_source == "socket"
    assert second.detect_source == "heartbeat"
    by_src = att.detect_by_source()
    assert by_src["socket"]["n"] == 1 and by_src["heartbeat"]["n"] == 1
    # the histogram side carries the same split
    m = refault_run.metrics
    counts = {
        h.labels["source"]: h.count
        for h in m
        if h.name == "disp.detect_latency_s" and h.count
    }
    assert counts == {"socket": 1, "heartbeat": 1}


def test_timeline_table_marks_aborted(refault_run):
    spans = recovery_timeline(refault_run.tracer)
    text = format_timeline(spans)
    assert "aborted:fault" in text
    assert "supersedes i1" in text


# ------------------------------------------------- composed faults


def test_composed_faults_timeline_and_audit():
    """Kill + store-replica crash + partition in one run: every phase
    stays attributable, the failover is counted, the audit stays clean."""
    cfg = DEFAULT_TESTBED.with_(ckpt_servers=3, ckpt_replicas=2)
    res = run_job(
        ring_prog, 4, device="v2", cfg=cfg, trace=True, seed=5, limit=600,
        params={"rounds": 60},
        checkpointing=True, ckpt_policy="random", ckpt_interval=0.3,
        ckpt_continuous=True, audit=True,
        faults=[
            ExplicitFaults([(1.0, 2)]),
            ServiceFaults([(0.9, "cs:0", 3.0)]),
            PartitionFaults([(3.5, (0,), 0.5)]),
        ],
    )
    assert res.audit is not None and res.audit.clean
    att = RecoveryAttribution.from_trace(res.tracer)
    assert len(att.completed) >= 1
    s = att.completed[0]
    assert s.rank == 2
    b = att.breakdown(s)
    assert all(b[p] is not None for p in att.PHASES)
    assert att.reconcile(s) < 1e-9
    # the dead replica forced the fetch onto a failover target
    assert s.fetch_failovers >= 1 and s.fetch_found is True
    assert res.stat("store.fetch_bytes") > 0


# ------------------------------------------------- time-series sampler


def test_timeseries_sampler_on_run(ckpt_faulty_run, tmp_path):
    ts = ckpt_faulty_run.timeseries
    assert ts is not None and ts.interval == 0.25
    assert "disp.recovering" in ts.series
    values = [v for _, v in ts.series["disp.recovering"]]
    assert max(values) >= 1.0  # the outstanding recovery was sampled
    assert values[-1] == 0.0  # and it drained by job end
    times = [t for t, _ in ts.series["disp.recovering"]]
    assert times == sorted(times)
    # JSONL round-trip
    path = tmp_path / "ts.jsonl"
    n = ts.write_jsonl(str(path))
    recs = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(recs) == n > 0
    assert {"t", "name", "value"} <= set(recs[0])


def test_timeseries_ring_is_bounded():
    m = Metrics()
    g = m.gauge("session.queue_depth")
    ts = TimeseriesSampler(m, interval=1.0, max_samples=4)
    for i in range(8):
        g.set(float(i))
        ts.sample(float(i))
    ring = ts.series["session.queue_depth"]
    assert len(ring) == 4
    assert ts.dropped == 4
    assert [v for _, v in ring] == [4.0, 5.0, 6.0, 7.0]
    # re-sampling the same instant is a no-op
    ts.sample(7.0)
    assert len(ring) == 4


def test_timeseries_prefix_selection():
    m = Metrics()
    m.counter("sched.ckpt_retry").inc(3)
    m.counter("el.cpu_s").inc(0.5)
    m.counter("dev.msgs_sent").inc(100)  # not selected
    ts = TimeseriesSampler(m, interval=1.0)
    ts.sample(1.0)
    assert "sched.ckpt_retry" in ts.series  # prefix match
    assert "el.cpu_s" in ts.series  # exact match
    assert "dev.msgs_sent" not in ts.series


def test_from_flag():
    m = Metrics()
    assert TimeseriesSampler.from_flag(m, True).interval == 0.5
    assert TimeseriesSampler.from_flag(m, 2).interval == 2.0
    with pytest.raises(ValueError):
        TimeseriesSampler(m, interval=0.0)


# ------------------------------------------------- chrome counter export


def test_counter_events_shape():
    tracks = {"disp.recovering": [(0.0, 0.0), (1.0, 2.0)]}
    evs = counter_events(tracks)
    assert evs[0]["ph"] == "M" and evs[0]["args"]["name"] == "telemetry"
    counters = [e for e in evs if e["ph"] == "C"]
    assert len(counters) == 2
    assert counters[1]["ts"] == pytest.approx(1e6)
    assert counters[1]["args"] == {"disp.recovering": 2.0}
    assert counter_events({}) == []


def test_chrome_trace_with_counters(ckpt_faulty_run, tmp_path):
    tracks = ckpt_faulty_run.timeseries.counter_tracks()
    doc = chrome_trace(ckpt_faulty_run.tracer, counters=tracks)
    by_ph = {}
    for e in doc["traceEvents"]:
        by_ph[e["ph"]] = by_ph.get(e["ph"], 0) + 1
    assert by_ph.get("C", 0) == sum(len(v) for v in tracks.values())
    # counter track rides a dedicated pid, disjoint from event tracks
    event_pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "i"}
    counter_pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "C"}
    assert counter_pids and not (event_pids & counter_pids)
    json.dumps(doc)
    # without counters the document is unchanged from the classic shape
    plain = chrome_trace(ckpt_faulty_run.tracer)
    assert not any(e["ph"] == "C" for e in plain["traceEvents"])


# ------------------------------------------------- helpers / CLI


def test_quantile():
    assert quantile([], 0.5) is None
    assert quantile([3.0], 0.95) == 3.0
    assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
    assert quantile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
    assert quantile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0


def test_cli_mttr_smoke(capsys, tmp_path):
    json_out = tmp_path / "mttr.json"
    ts_out = tmp_path / "ts.jsonl"
    rc = main([
        "mttr", "cg", "--class", "S", "-n", "4",
        "--kill-at", "1.0:2", "--seed", "1",
        "--json-out", str(json_out), "--timeseries-out", str(ts_out),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "per-fault phase decomposition" in out
    assert "detection latency by source" in out
    doc = json.loads(json_out.read_text())
    assert doc["attribution"]["completed"] >= 1
    assert doc["attribution"]["max_reconcile_err_s"] < 1e-9
    assert ts_out.exists() and ts_out.read_text().strip()


def test_cli_stats_surfaces_detect_latency(capsys):
    rc = main(["faulty", "cg", "--class", "S", "-n", "4",
               "--faults", "1", "--seed", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "detection latency by source" in out
    assert "socket" in out
