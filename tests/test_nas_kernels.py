"""Tests for the NAS kernel proxies.

Class T (tiny) runs real numpy arithmetic through the same communication
pattern as the timing classes, so every kernel is checked for (a)
cross-device result identity (P4 vs V1 vs V2) and (b) fault/replay
result identity on V2 — the paper's consistency property applied to all
six kernels.
"""

import pytest

from repro.ft.failure import ExplicitFaults
from repro.runtime.mpirun import run_job
from repro.workloads import nas

ALL = sorted(nas.KERNELS)


def run_kernel(name, nprocs, device="p4", klass="T", **kw):
    prog = nas.KERNELS[name].program
    return run_job(prog, nprocs, device=device, params={"klass": klass}, **kw)


def nproc_for(name):
    return 4 if name in nas.SQUARE_ONLY else 4


@pytest.mark.parametrize("name", ALL)
def test_kernel_runs_and_returns_result(name):
    res = run_kernel(name, nproc_for(name))
    out = res.results[0]
    assert out.kernel == name
    assert out.nprocs == nproc_for(name)
    assert out.checksum is not None


@pytest.mark.parametrize("name", ALL)
def test_kernel_checksum_identical_across_devices(name):
    n = nproc_for(name)
    ref = run_kernel(name, n, device="p4").results[0].checksum
    for device in ("v1", "v2"):
        got = run_kernel(name, n, device=device).results[0].checksum
        assert got == ref, f"{name}: {device} diverged from p4"


@pytest.mark.parametrize("name", ALL)
def test_kernel_survives_fault_with_identical_result(name):
    n = nproc_for(name)
    ref = run_kernel(name, n, device="v2").results[0].checksum
    res = run_kernel(
        name, n, device="v2", faults=ExplicitFaults([(0.002, 1)]), limit=900.0
    )
    assert res.restarts >= 1
    assert res.results[0].checksum == ref


@pytest.mark.parametrize("name", ALL)
def test_kernel_timing_mode_advances_time(name):
    n = nproc_for(name)
    res = run_kernel(name, n, klass="S", limit=100000.0)
    assert res.elapsed > 0.2
    assert res.results[0].checksum is None


def test_bt_rejects_non_square():
    with pytest.raises(Exception):
        run_kernel("bt", 3)


def test_specs_have_classes():
    for name, mod in nas.KERNELS.items():
        for klass in ("T", "A", "B"):
            sp = mod.spec(klass)
            assert sp.total_flops > 0
            assert sp.iters > 0
            assert sp.footprint_per_proc(4) > 0


def test_cg_scales_with_procs():
    """More processes -> less computation per rank (the comm side grows)."""
    t2 = run_kernel("cg", 2, klass="S", limit=100000.0)
    t8 = run_kernel("cg", 8, klass="S", limit=100000.0)
    assert t8.compute_time(0) < t2.compute_time(0)


def test_v2_slower_than_p4_on_cg():
    """The latency-bound kernel: V2 communication cost shows (Fig 7)."""
    p4 = run_kernel("cg", 4, device="p4", klass="S", limit=100000.0).elapsed
    v2 = run_kernel("cg", 4, device="v2", klass="S", limit=100000.0).elapsed
    assert v2 > p4


def test_specs_include_class_c():
    for name, mod in nas.KERNELS.items():
        sp = mod.spec("C")
        assert sp.total_flops > mod.spec("B").total_flops
        assert sp.footprint_total > mod.spec("B").footprint_total
