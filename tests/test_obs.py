"""Observability layer: registry semantics, trace export, timelines.

Covers the metrics registry in isolation, the Chrome trace-event export
(valid JSON, monotonic microsecond timestamps, stable pid/tid mapping),
the recovery timeline reconstructed from an injected-fault run, and the
acceptance property that a V2 job exposes nonzero mechanism stats where
a P4 job exposes zeros.
"""

import json

import pytest

from repro.analysis.report import format_stats, format_timeline
from repro.ft.failure import ExplicitFaults
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    chrome_trace,
    merge_chrome_traces,
    recovery_timeline,
    trace_records,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.runtime.mpirun import run_job
from repro.simnet.trace import Tracer


def ring_prog(mpi, rounds=8, nbytes=2000, work=0.02):
    """Token ring (mirrors the fault-tolerance suite's workload)."""
    nxt = (mpi.rank + 1) % mpi.size
    prv = (mpi.rank - 1) % mpi.size
    token = [0]
    for _ in range(rounds):
        if mpi.rank == 0:
            yield from mpi.send(nxt, nbytes=nbytes, tag=0, data=list(token))
            msg = yield from mpi.recv(source=prv, tag=0)
            token = [msg.data[0] + 1] + msg.data[1:]
        else:
            msg = yield from mpi.recv(source=prv, tag=0)
            token = msg.data + [mpi.rank]
            yield from mpi.send(nxt, nbytes=nbytes, tag=0, data=token)
        yield from mpi.compute(seconds=work)
    return token


# ---------------------------------------------------------------- registry


def test_counter_basics():
    m = Metrics()
    c = m.counter("x.count", rank=0)
    c.inc()
    c.inc(2.5)
    assert c.scalar() == pytest.approx(3.5)
    # get-or-create: same (name, labels) returns the same instance
    assert m.counter("x.count", rank=0) is c
    assert m.counter("x.count", rank=1) is not c


def test_counter_rejects_negative():
    c = Metrics().counter("x")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_kind_mismatch_raises():
    m = Metrics()
    m.counter("x", rank=0)
    with pytest.raises(TypeError):
        m.gauge("x", rank=0)


def test_gauge_time_weighted_average():
    m = Metrics()
    g = m.gauge("occ", rank=0)
    g.set(10.0, now=0.0)
    g.set(20.0, now=1.0)  # held 10 for [0,1)
    g.set(0.0, now=3.0)  # held 20 for [1,3)
    assert g.value == 0.0
    assert g.peak == 20.0
    assert g.time_avg(3.0) == pytest.approx((10 * 1 + 20 * 2) / 3)


def test_histogram_buckets_and_stats():
    m = Metrics()
    h = m.histogram("lat", bounds=(0.1, 1.0, 10.0), rank=0)
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(55.55)
    assert h.min == 0.05 and h.max == 50.0
    exp = h.export()
    assert exp["buckets"]["le_0.1"] == 1
    assert exp["buckets"]["le_1"] == 1
    assert exp["buckets"]["le_10"] == 1
    assert exp["buckets"]["overflow"] == 1


def test_registry_total_and_by_label():
    m = Metrics()
    m.counter("bytes", rank=0).inc(10)
    m.counter("bytes", rank=1).inc(32)
    m.counter("other", host="h0").inc(5)
    assert m.total("bytes") == 42
    assert m.total("bytes", rank=1) == 32
    assert m.total("missing", default=-1.0) == -1.0
    by = m.by_label("rank")
    assert by[0]["bytes"] == 10 and by[1]["bytes"] == 32
    assert "other" not in by.get(0, {})
    snap = m.snapshot()
    assert snap["bytes"] == 42 and snap["other"] == 5


def test_registry_export_shapes():
    m = Metrics()
    m.counter("c", rank=0).inc()
    m.gauge("g", rank=0).set(2.0, now=1.0)
    m.histogram("h", rank=0).observe(0.5)
    kinds = {e["kind"] for e in m.export()}
    assert kinds == {"counter", "gauge", "histogram"}
    assert len(m) == 3
    json.dumps(m.export())  # export must be JSON-serialisable


# ------------------------------------------------------------ ring buffer


def test_tracer_unbounded_by_default():
    t = Tracer(enabled=True)
    for i in range(100):
        t.emit(float(i), "x", i=i)
    assert len(t) == 100 and t.dropped == 0
    assert isinstance(t.records, list)


def test_tracer_ring_buffer_drops_oldest():
    t = Tracer(enabled=True, max_records=10)
    for i in range(25):
        t.emit(float(i), "x", i=i)
    assert len(t) == 10
    assert t.dropped == 15
    assert [r["i"] for r in t.records] == list(range(15, 25))
    t.clear()
    assert len(t) == 0 and t.dropped == 0


# ------------------------------------------------------------ trace export


@pytest.fixture(scope="module")
def traced_run():
    return run_job(ring_prog, 3, device="v2", trace=True)


def test_chrome_trace_is_valid_json(traced_run, tmp_path):
    path = tmp_path / "t.json"
    n = write_chrome_trace(traced_run.tracer, str(path))
    assert n == len(traced_run.tracer)
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert len([e for e in doc["traceEvents"] if e.get("ph") == "i"]) == n


def test_chrome_trace_monotonic_and_microseconds(traced_run):
    doc = chrome_trace(traced_run.tracer)
    events = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
    ts = [e["ts"] for e in events]
    assert ts == sorted(ts)  # tracer emits in simulated-time order
    # ts is microseconds: last event matches the last record's time
    assert ts[-1] == pytest.approx(traced_run.tracer.records[-1].time * 1e6)
    for e in events:
        assert e["s"] == "t" and isinstance(e["pid"], int)


def test_chrome_trace_pid_tid_mapping(traced_run):
    doc = chrome_trace(traced_run.tracer)
    names = {}
    for e in doc["traceEvents"]:
        if e.get("ph") == "M" and e["name"] == "process_name":
            names[e["pid"]] = e["args"]["name"]
    # every instant event's pid has a registered track name
    tracks = set()
    for e in doc["traceEvents"]:
        if e.get("ph") == "i":
            assert e["pid"] in names
            tracks.add(names[e["pid"]])
    # a V2 run populates rank, host and event-logger tracks
    assert any(t.startswith("rank") for t in tracks)
    assert any(t.startswith("host:") for t in tracks)
    assert "event-logger" in tracks


def test_merge_chrome_traces_namespaces_tracks(traced_run):
    other = run_job(ring_prog, 2, device="p4", trace=True)
    doc = merge_chrome_traces([("a", traced_run.tracer), ("b", other.tracer)])
    names = [
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    ]
    assert any(n.startswith("a:") for n in names)
    assert any(n.startswith("b:") for n in names)
    pids_a = {
        e["pid"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["args"]["name"].startswith("a:")
    }
    pids_b = {
        e["pid"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["args"]["name"].startswith("b:")
    }
    assert not (pids_a & pids_b)


def test_trace_jsonl_roundtrip(traced_run, tmp_path):
    path = tmp_path / "t.jsonl"
    n = write_trace_jsonl(traced_run.tracer, str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == n == len(traced_run.tracer)
    first = json.loads(lines[0])
    assert "time" in first and "kind" in first
    kinds = {json.loads(ln)["kind"] for ln in lines}
    assert any(k.startswith("v2.") for k in kinds)


def test_trace_records_match_tracer(traced_run):
    recs = trace_records(traced_run.tracer)
    assert len(recs) == len(traced_run.tracer)
    assert recs[0]["kind"] == traced_run.tracer.records[0].kind


def test_chrome_trace_reports_drops():
    t = Tracer(enabled=True, max_records=5)
    for i in range(9):
        t.emit(float(i), "x")
    doc = chrome_trace(t)
    assert doc["metadata"]["dropped_records"] == 4


# -------------------------------------------------------- recovery timeline


@pytest.fixture(scope="module")
def faulty_run():
    return run_job(
        ring_prog,
        4,
        device="v2",
        trace=True,
        faults=ExplicitFaults([(0.1, 2)]),
    )


def test_recovery_timeline_spans(faulty_run):
    spans = recovery_timeline(faulty_run.tracer)
    assert len(spans) == 1
    s = spans[0]
    assert s.rank == 2
    assert s.fault_t == pytest.approx(0.1)
    assert s.detect_t is not None and s.detect_t >= s.fault_t
    assert s.respawn_t is not None and s.respawn_t >= s.detect_t
    assert s.caught_up_t is not None and s.caught_up_t >= s.respawn_t
    assert s.downtime_s == pytest.approx(s.respawn_t - s.fault_t)
    assert s.recovery_s == pytest.approx(s.caught_up_t - s.fault_t)
    assert s.incarnation >= 1
    d = s.as_dict()
    assert d["rank"] == 2 and d["caught_up_t"] == s.caught_up_t


def test_recovery_timeline_empty_without_faults(traced_run):
    assert recovery_timeline(traced_run.tracer) == []


def test_faulty_trace_has_dispatcher_track(faulty_run):
    doc = chrome_trace(faulty_run.tracer)
    names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert "dispatcher" in names  # ft.* events land on the dispatcher track


def test_faulty_run_counts_replayed_deliveries(faulty_run):
    assert faulty_run.stat("ft.faults") == 1
    assert faulty_run.stat("ft.restarts") == 1
    assert faulty_run.stat("deliveries.replayed") > 0
    assert faulty_run.stat("ckpt.bytes", default=-1.0) >= 0


# ------------------------------------------------------- job-level stats


@pytest.fixture(scope="module")
def v2_run():
    return run_job(ring_prog, 3, device="v2")


@pytest.fixture(scope="module")
def p4_run():
    return run_job(ring_prog, 3, device="p4")


def test_v2_stats_nonzero(v2_run):
    # acceptance: the core mechanism signals must be live on V2
    assert v2_run.stat("el.roundtrips") > 0
    assert v2_run.stat("gate.stall_s") > 0
    assert v2_run.stat("senderlog.bytes") > 0
    assert v2_run.stat("net.bytes") > 0
    assert v2_run.stat("deliveries.fresh") > 0
    assert v2_run.stat("deliveries.replayed") == 0  # fault-free


def test_p4_stats_zero_for_v2_mechanisms(p4_run):
    assert p4_run.stat("el.roundtrips") == 0
    assert p4_run.stat("gate.stall_s") == 0
    assert p4_run.stat("senderlog.bytes") == 0
    assert p4_run.stat("net.bytes") > 0  # but the network is still metered


def test_per_rank_stats_merge_registry_keys(v2_run):
    st = v2_run.stats[0]
    assert st["bytes_sent"] > 0  # raw device snapshot keys survive
    assert st["el.roundtrips"] > 0  # registry keys merged alongside
    assert v2_run.stat("el.roundtrips", rank=0) == st["el.roundtrips"]


def test_metrics_off_when_absent():
    from repro.runtime.results import JobResult

    res = JobResult(nprocs=1, device="p4", elapsed=0.0, results=[], timers={})
    assert res.stat("anything", default=7.0) == 7.0


# ------------------------------------------------------------- formatters


def test_format_stats_renders_tables(v2_run):
    text = format_stats(v2_run.metrics)
    assert "rank" in text
    assert "el.roundtrips" in text
    assert "metric" in text and "total" in text


def test_format_stats_empty_registry():
    assert format_stats(Metrics()) == "(no metrics recorded)"


def test_format_timeline_renders(faulty_run):
    text = format_timeline(recovery_timeline(faulty_run.tracer))
    assert "downtime s" in text and "caught-up s" in text


def test_format_timeline_empty():
    assert format_timeline([]) == "(no restarts)"


# ------------------------------------------------- overhead / compatibility


def test_counters_survive_restart(faulty_run):
    # the restarted rank keeps accumulating into the same labelled series
    assert faulty_run.stat("senderlog.bytes", rank=2) > 0
    assert faulty_run.stat("el.roundtrips", rank=2) > 0


def test_metrics_do_not_change_simulated_time():
    # observability must be free in simulated time: elapsed matches a
    # reference value only if no metric path adds timeouts
    a = run_job(ring_prog, 3, device="v2").elapsed
    b = run_job(ring_prog, 3, device="v2", trace=True).elapsed
    assert a == b


def test_histogram_export_names():
    exp = Counter.__name__, Gauge.__name__, Histogram.__name__
    assert exp == ("Counter", "Gauge", "Histogram")
