"""Integration tests: real MPI programs on the MPICH-P4 baseline device."""

import numpy as np
import pytest

from repro.runtime.mpirun import run_job


def test_two_rank_ping():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=100, tag=1, data="ping")
            msg = yield from mpi.recv(source=1, tag=2)
            return msg.data
        msg = yield from mpi.recv(source=0, tag=1)
        yield from mpi.send(0, nbytes=100, tag=2, data=msg.data + "/pong")
        return "done"

    res = run_job(prog, 2)
    assert res.results[0] == "ping/pong"
    assert res.elapsed > 0


def test_token_ring_accumulates_ranks():
    def prog(mpi):
        nxt = (mpi.rank + 1) % mpi.size
        prv = (mpi.rank - 1) % mpi.size
        if mpi.rank == 0:
            yield from mpi.send(nxt, nbytes=8, tag=0, data=[0])
            msg = yield from mpi.recv(source=prv, tag=0)
            return msg.data
        msg = yield from mpi.recv(source=prv, tag=0)
        yield from mpi.send(nxt, nbytes=8, tag=0, data=msg.data + [mpi.rank])
        return None

    res = run_job(prog, 5)
    assert res.results[0] == [0, 1, 2, 3, 4]


def test_nonblocking_exchange():
    def prog(mpi):
        peer = 1 - mpi.rank
        sreq = yield from mpi.isend(peer, nbytes=2048, tag=3, data=mpi.rank * 10)
        rreq = yield from mpi.irecv(source=peer, tag=3)
        yield from mpi.waitall([sreq, rreq])
        return rreq.message.data

    res = run_job(prog, 2)
    assert res.results == [10, 0]


def test_rendezvous_large_message():
    def prog(mpi):
        data = np.arange(64 * 1024, dtype=np.float64)  # 512 KB > eager threshold
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=int(data.nbytes), tag=9, data=data)
            return None
        msg = yield from mpi.recv(source=0, tag=9)
        return float(np.sum(msg.data))

    res = run_job(prog, 2)
    assert res.results[1] == pytest.approx(float(np.sum(np.arange(64 * 1024))))


def test_rendezvous_unexpected_rts_then_recv():
    """RTS arriving before the receive is posted still completes."""

    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=300_000, tag=1, data="bulk")
            return None
        yield from mpi.compute(seconds=0.05)  # let the RTS arrive first
        msg = yield from mpi.recv(source=0, tag=1)
        return msg.data

    res = run_job(prog, 2)
    assert res.results[1] == "bulk"


def test_any_source_receive():
    def prog(mpi):
        if mpi.rank == 0:
            got = []
            for _ in range(mpi.size - 1):
                msg = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=0)
                got.append(msg.data)
            return sorted(got)
        yield from mpi.compute(seconds=0.001 * mpi.rank)
        yield from mpi.send(0, nbytes=8, tag=0, data=mpi.rank)
        return None

    res = run_job(prog, 4)
    assert res.results[0] == [1, 2, 3]


def test_message_order_non_overtaking():
    def prog(mpi):
        if mpi.rank == 0:
            for i in range(10):
                yield from mpi.send(1, nbytes=64, tag=7, data=i)
            return None
        out = []
        for _ in range(10):
            msg = yield from mpi.recv(source=0, tag=7)
            out.append(msg.data)
        return out

    res = run_job(prog, 2)
    assert res.results[1] == list(range(10))


def test_self_send():
    def prog(mpi):
        yield from mpi.send(mpi.rank, nbytes=10, tag=1, data="me")
        msg = yield from mpi.recv(source=mpi.rank, tag=1)
        return msg.data

    res = run_job(prog, 2)
    assert res.results == ["me", "me"]


def test_iprobe_and_probe():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.compute(seconds=0.01)
            yield from mpi.send(1, nbytes=128, tag=5, data="x")
            return None
        polls = 0
        while True:
            found = yield from mpi.iprobe(source=0, tag=5)
            if found:
                break
            polls += 1
            yield from mpi.compute(seconds=0.001)
        src, tag, nbytes = yield from mpi.probe(source=0, tag=5)
        msg = yield from mpi.recv(source=0, tag=5)
        return (polls > 0, src, tag, nbytes, msg.data)

    res = run_job(prog, 2)
    assert res.results[1] == (True, 0, 5, 128, "x")


def test_barrier_synchronizes():
    def prog(mpi):
        yield from mpi.compute(seconds=0.01 * (mpi.rank + 1))
        yield from mpi.barrier()
        return mpi.sim.now

    res = run_job(prog, 4)
    # everyone leaves the barrier after the slowest rank's compute
    assert min(res.results) >= 0.04


@pytest.mark.parametrize("nprocs", [2, 3, 4, 7, 8])
def test_bcast_correct(nprocs):
    def prog(mpi):
        data = "payload" if mpi.rank == 1 else None
        out = yield from mpi.bcast(root=1, nbytes=1000, data=data)
        return out

    res = run_job(prog, nprocs)
    assert res.results == ["payload"] * nprocs


@pytest.mark.parametrize("nprocs", [2, 4, 5, 8])
def test_reduce_sum(nprocs):
    def prog(mpi):
        out = yield from mpi.reduce(root=0, value=mpi.rank + 1, nbytes=8)
        return out

    res = run_job(prog, nprocs)
    assert res.results[0] == nprocs * (nprocs + 1) // 2
    assert all(r is None for r in res.results[1:])


@pytest.mark.parametrize("nprocs", [2, 4, 8, 3, 6])
def test_allreduce_sum(nprocs):
    def prog(mpi):
        out = yield from mpi.allreduce(value=mpi.rank + 1, nbytes=8)
        return out

    res = run_job(prog, nprocs)
    assert res.results == [nprocs * (nprocs + 1) // 2] * nprocs


def test_allreduce_numpy_arrays():
    def prog(mpi):
        v = np.full(16, float(mpi.rank))
        out = yield from mpi.allreduce(value=v, nbytes=int(v.nbytes))
        return float(out[0])

    res = run_job(prog, 4)
    assert res.results == [6.0] * 4


@pytest.mark.parametrize("nprocs", [2, 4, 5])
def test_gather(nprocs):
    def prog(mpi):
        out = yield from mpi.gather(root=0, value=mpi.rank * 2, nbytes=8)
        return out

    res = run_job(prog, nprocs)
    assert res.results[0] == [2 * r for r in range(nprocs)]


@pytest.mark.parametrize("nprocs", [2, 4, 5])
def test_allgather(nprocs):
    def prog(mpi):
        out = yield from mpi.allgather(value=mpi.rank, nbytes=8)
        return out

    res = run_job(prog, nprocs)
    assert all(r == list(range(nprocs)) for r in res.results)


def test_scatter():
    def prog(mpi):
        values = [f"v{i}" for i in range(mpi.size)] if mpi.rank == 2 else None
        out = yield from mpi.scatter(root=2, values=values, nbytes=8)
        return out

    res = run_job(prog, 4)
    assert res.results == ["v0", "v1", "v2", "v3"]


@pytest.mark.parametrize("nprocs", [2, 4, 3, 8])
def test_alltoall(nprocs):
    def prog(mpi):
        values = [(mpi.rank, dst) for dst in range(mpi.size)]
        out = yield from mpi.alltoall(values, nbytes_each=16)
        return out

    res = run_job(prog, nprocs)
    for r in range(nprocs):
        assert res.results[r] == [(src, r) for src in range(nprocs)]


def test_compute_advances_time():
    def prog(mpi):
        t0 = mpi.sim.now
        yield from mpi.compute(seconds=1.5)
        return mpi.sim.now - t0

    res = run_job(prog, 1)
    assert res.results[0] == pytest.approx(1.5)


def test_compute_flops_uses_host_rate():
    def prog(mpi):
        t0 = mpi.sim.now
        yield from mpi.compute(flops=2.6e8)  # cfg.cn_flops
        return mpi.sim.now - t0

    res = run_job(prog, 1)
    assert res.results[0] == pytest.approx(1.0, rel=0.01)


def test_timer_attribution_categories():
    def prog(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(1, nbytes=50_000, tag=0)
            yield from mpi.wait(req)
        else:
            req = yield from mpi.irecv(source=0, tag=0)
            yield from mpi.wait(req)
        yield from mpi.compute(seconds=0.5)
        return dict(mpi.timer.totals)

    res = run_job(prog, 2)
    t0, t1 = res.results
    assert t0["isend"] > 0
    assert t1["wait"] > 0
    assert t0["compute"] == pytest.approx(0.5, abs=0.01)


def test_deterministic_elapsed_time():
    def prog(mpi):
        peer = 1 - mpi.rank
        for _ in range(5):
            if mpi.rank == 0:
                yield from mpi.send(peer, nbytes=10_000)
                yield from mpi.recv(source=peer)
            else:
                yield from mpi.recv(source=peer)
                yield from mpi.send(peer, nbytes=10_000)
        return None

    r1 = run_job(prog, 2)
    r2 = run_job(prog, 2)
    assert r1.elapsed == r2.elapsed
