"""The performance-attribution layer (repro.obs.profile).

Covers the three mechanisms separately and end-to-end: the kernel
probe (exact dispatch counts, kind labelling, sampled service CPU,
probe detach on finish), the process-name -> service classifier, the
critical-path walk over a hand-built happens-before graph (latest
predecessor wins, per-category aggregation), and the ``profile=True``
plumbing through ``run_job`` with el-ack edges present on a real V2 run.
"""

import pytest

from repro.obs.profile import KernelProfiler, classify_service, critical_path
from repro.runtime.mpirun import run_job
from repro.simnet.kernel import Simulator


def ring(mpi, rounds=6, work=0.01):
    nxt, prv = (mpi.rank + 1) % mpi.size, (mpi.rank - 1) % mpi.size
    token = mpi.rank
    for r in range(rounds):
        sreq = yield from mpi.isend(nxt, nbytes=256, tag=r, data=token)
        rreq = yield from mpi.irecv(source=prv, tag=r)
        yield from mpi.waitall([sreq, rreq])
        token = rreq.message.data + 1
        yield from mpi.compute(seconds=work)
    return token


# -- service classification --------------------------------------------------


def test_classify_service_prefix_rules():
    assert classify_service("rank3.i0") == "app"
    assert classify_service("daemon2.i1") == "daemon"
    assert classify_service("d3.el.i0") == "daemon"  # daemon-side EL client
    assert classify_service("d0.fwd.i2") == "daemon"
    assert classify_service("el:0.accept") == "el"
    assert classify_service("cs:1.serve(0)") == "store"
    assert classify_service("sched.drive") == "scheduler"
    assert classify_service("disp.hb-monitor") == "dispatcher"
    assert classify_service("dispatcher.accept") == "dispatcher"
    assert classify_service("cm:0.serve") == "cm"
    assert classify_service("fault-injector") == "infra"
    assert classify_service("v1.restart2") == "infra"


# -- the kernel probe --------------------------------------------------------


def test_profiler_counts_exact_and_services_sampled():
    sim = Simulator()
    # odd stride: the two tickers alternate resumes, so an even stride
    # would sample only one of them (the periodic-aliasing caveat)
    prof = KernelProfiler(sample_every=3).install(sim)

    def ticker(n):
        for _ in range(n):
            yield sim.timeout(0.01)

    sim.spawn(ticker(100), name="rank0")
    sim.spawn(ticker(100), name="daemon0.i0")
    sim.run()
    profile = prof.finish()
    assert sim._probe is None  # finish() detaches
    assert profile.events == sum(k["count"] for k in profile.kinds)
    by_kind = {k["kind"]: k["count"] for k in profile.kinds}
    timeouts = [c for k, c in by_kind.items() if "timeout" in k]
    assert sum(timeouts) == 200  # counts are exact, not sampled
    assert profile.events_per_s > 0
    assert profile.sim_s == pytest.approx(1.0)
    svcs = {s["service"] for s in profile.services}
    assert "app" in svcs and "daemon" in svcs
    assert all(s["cpu_s"] >= 0 for s in profile.services)
    assert abs(sum(s["share"] for s in profile.services) - 1.0) < 1e-9
    assert profile.queue_depth["samples"] > 0
    assert profile.queue_depth["max"] >= profile.queue_depth["mean"]


def test_profiler_rejects_bad_stride_and_runs_detached():
    with pytest.raises(ValueError):
        KernelProfiler(sample_every=0)
    sim = Simulator()
    assert sim._probe is None  # the default kernel path carries no probe


# -- critical path -----------------------------------------------------------


def _hb():
    """tx(r0) --message--> log_event(r1) --el--> el_ack(r1) --> tx(r1)."""
    nodes = [
        {"id": 0, "rank": 0, "op": "tx", "time": 0.0},
        {"id": 1, "rank": 1, "op": "log_event", "time": 0.3},
        {"id": 2, "rank": 1, "op": "el_ack", "time": 0.9},
        {"id": 3, "rank": 1, "op": "tx", "time": 1.0},
    ]
    edges = [
        {"from": 0, "to": 1, "kind": "message"},
        {"from": 1, "to": 2, "kind": "el"},
        {"from": 1, "to": 3, "kind": "program"},
        {"from": 2, "to": 3, "kind": "program"},
    ]
    return {"nodes": nodes, "edges": edges}


def test_critical_path_follows_latest_predecessor():
    cp = critical_path(_hb())
    assert cp["end"]["id"] == 3
    # tx's two predecessors: log_event (0.3) and el_ack (0.9); the walk
    # must take the ack — the dependency that actually bound the send
    cats = [s["category"] for s in cp["steps"]]
    assert cats == ["message", "el-ack", "local-tx"]
    assert cp["span_s"] == pytest.approx(1.0)
    assert cp["top_contributor"] == "el-ack"
    top = cp["contributions"][0]
    assert top["category"] == "el-ack"
    assert top["latency_s"] == pytest.approx(0.6)
    assert top["share"] == pytest.approx(0.6)


def test_critical_path_empty_graph():
    cp = critical_path({"nodes": [], "edges": []})
    assert cp["steps"] == [] and cp["span_s"] == 0.0
    assert cp["top_contributor"] is None and cp["end"] is None


# -- run_job plumbing --------------------------------------------------------


def test_run_job_profile_off_by_default():
    res = run_job(ring, 2, device="p4", params={"rounds": 2, "work": 0.0})
    assert res.profile is None


def test_run_job_profile_v2_with_critical_path():
    res = run_job(
        ring, 4, device="v2", params={"rounds": 8, "work": 0.01},
        profile=True, audit=True, audit_hb=True,
    )
    p = res.profile
    assert p is not None and p.events > 0
    assert p.events == sum(k["count"] for k in p.kinds)
    assert p.wall_s > 0 and p.events_per_s > 0
    assert {s["service"] for s in p.services} >= {"daemon", "app"}
    assert res.audit.clean
    cp = critical_path(res.audit.hb)
    assert cp["span_s"] > 0 and len(cp["steps"]) > 0
    # pessimistic logging leaves its signature: el edges on the graph
    # and an el-ack contribution on the binding chain
    assert any(e["kind"] == "el" for e in res.audit.hb["edges"])
    assert any(c["category"] == "el-ack" for c in cp["contributions"])


def test_run_job_profile_p4_and_v1():
    for dev in ("p4", "v1"):
        res = run_job(
            ring, 2, device=dev, params={"rounds": 3, "work": 0.0},
            profile=True,
        )
        assert res.profile is not None and res.profile.events > 0


def test_profiled_run_matches_unprofiled_results():
    """The probe must not perturb the simulation: same program, same
    seed, same simulated outcome with and without profiling."""
    plain = run_job(ring, 4, device="v2", params={"rounds": 6, "work": 0.01})
    probed = run_job(
        ring, 4, device="v2", params={"rounds": 6, "work": 0.01},
        profile=True,
    )
    assert probed.results == plain.results
    assert probed.elapsed == plain.elapsed
