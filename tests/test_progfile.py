"""Tests for the §4.7 program-file deployment machinery."""

import pytest

from repro.runtime.mpirun import run_job
from repro.runtime.progfile import parse_progfile

PROGFILE = """
# paper-style machine description
node01  CN
node02  CN
node03  CN
node04  CN  speed=fast
spareA  SPARE
frontend  EL
frontend  SC
frontend  DISPATCHER
storage   CS
"""


def test_parse_roles_and_options():
    plan = parse_progfile(PROGFILE)
    assert plan.cns == ["node01", "node02", "node03", "node04"]
    assert plan.spares == ["spareA"]
    assert plan.els == ["frontend"]
    assert plan.cs == "storage"
    assert plan.scheduler == "frontend"
    assert plan.dispatcher == "frontend"
    assert plan.options["node04"] == {"speed": "fast"}
    assert plan.nprocs == 4


def test_sc_and_dispatcher_default_to_el_machine():
    plan = parse_progfile("n1 CN\nel1 EL\nst CS\n")
    assert plan.scheduler == "el1"
    assert plan.dispatcher == "el1"


def test_parse_rejects_unknown_role():
    with pytest.raises(ValueError, match="unknown role"):
        parse_progfile("n1 WORKER\n")


def test_parse_rejects_missing_services():
    with pytest.raises(ValueError, match="no event logger"):
        parse_progfile("n1 CN\nst CS\n")
    with pytest.raises(ValueError, match="no checkpoint server"):
        parse_progfile("n1 CN\nel EL\n")
    with pytest.raises(ValueError, match="no computing nodes"):
        parse_progfile("el EL\nst CS\n")


def test_parse_rejects_volatile_reliable_overlap():
    with pytest.raises(ValueError, match="volatile"):
        parse_progfile("n1 CN\nn1 EL\nst CS\n")


def test_parse_rejects_duplicate_cs():
    with pytest.raises(ValueError, match="duplicate"):
        parse_progfile("n1 CN\nel EL\ns1 CS\ns2 CS\n")


def test_run_job_with_plan():
    from repro.ft.failure import ExplicitFaults

    plan = parse_progfile(PROGFILE)

    def prog(mpi):
        out = yield from mpi.allreduce(value=mpi.rank + 1, nbytes=8)
        yield from mpi.compute(seconds=0.05)
        return out

    clean = run_job(prog, 4, device="v2", plan=plan)
    assert clean.results == [10, 10, 10, 10]
    disp = clean.extras["dispatcher"]
    assert disp.states[0].host.name == "node01"

    plan2 = parse_progfile(PROGFILE)
    faulty = run_job(prog, 4, device="v2", plan=plan2,
                     faults=ExplicitFaults([(0.02, 1)]), limit=600.0)
    assert faulty.restarts == 1
    assert faulty.results == clean.results
    # the restart took the declared spare machine
    assert faulty.extras["dispatcher"].states[1].host.name == "spareA"


def test_plan_nprocs_mismatch_rejected():
    plan = parse_progfile(PROGFILE)

    def prog(mpi):
        yield mpi.sim.timeout(0.0)

    with pytest.raises(ValueError, match="4 computing nodes"):
        run_job(prog, 8, device="v2", plan=plan)
