"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.clocks import ClockState
from repro.core.sender_log import SenderLog
from repro.ft.failure import ExplicitFaults
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, CTX_PT2PT, Envelope
from repro.mpi.matching import MatchEngine
from repro.mpi.requests import RecvRequest
from repro.runtime.mpirun import run_job
from repro.sched import scheme, simulate
from repro.simnet import Host, Network, Simulator, Stream

slow = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- kernel -------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.after(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# -- streams: FIFO delivery ------------------------------------------------------


@given(
    st.lists(st.integers(min_value=1, max_value=200_000), min_size=1, max_size=30)
)
@settings(max_examples=30, deadline=None)
def test_stream_fifo_for_any_segment_sizes(sizes):
    sim = Simulator()
    net = Network(sim)
    a = net.add_host(Host(sim, "a"))
    b = net.add_host(Host(sim, "b"))
    stream = Stream(net, a, b)
    got = []

    def writer():
        for i, n in enumerate(sizes):
            yield from stream.a.write(n, payload=i)

    def reader():
        for _ in sizes:
            _, payload = yield stream.b.read()
            got.append(payload)

    sim.spawn(writer(), "w")
    p = sim.spawn(reader(), "r")
    sim.run_until(p.done)
    assert got == list(range(len(sizes)))


# -- matching ---------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.booleans(),  # True: arrival, False: post a receive
            st.integers(min_value=0, max_value=3),  # src (or wildcard if 3)
            st.integers(min_value=0, max_value=2),  # tag (or wildcard if 2)
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_matching_delivers_every_message_exactly_once(ops):
    sim = Simulator()
    m = MatchEngine()
    seq = 0
    delivered = []
    for is_arrival, src, tag in ops:
        if is_arrival:
            seq += 1
            env = Envelope(
                src=min(src, 2), dst=9, tag=tag, context=CTX_PT2PT,
                nbytes=8, sclock=seq,
            )
            req = m.arrived(env)
            if req is not None:
                delivered.append((env.sclock, req))
        else:
            rsrc = ANY_SOURCE if src == 3 else src
            rtag = ANY_TAG if tag == 2 else tag
            req = RecvRequest(sim, rsrc, rtag, CTX_PT2PT)
            env = m.post(req)
            if env is not None:
                delivered.append((env.sclock, req))
    # no message delivered twice, no request fulfilled twice
    sclocks = [s for s, _ in delivered]
    reqs = [id(r) for _, r in delivered]
    assert len(set(sclocks)) == len(sclocks)
    assert len(set(reqs)) == len(reqs)
    # conservation: arrivals = delivered + still unexpected
    arrivals = sum(1 for a, _, _ in ops if a)
    assert arrivals == len(delivered) + len(m.unexpected)


# -- clocks --------------------------------------------------------------------------


@given(st.lists(st.booleans(), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_clock_sequences_monotonic_and_disjoint(ticks):
    c = ClockState()
    sends, recvs = [], []
    for is_send in ticks:
        if is_send:
            sends.append(c.tick_send())
        else:
            recvs.append(c.tick_recv(0, len(recvs) + 1))
    assert sends == list(range(1, len(sends) + 1))
    assert recvs == list(range(1, len(recvs) + 1))
    assert c.h == len(ticks)


# -- sender log -----------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # dst
            st.integers(min_value=1, max_value=50_000),  # nbytes
        ),
        min_size=1,
        max_size=50,
    ),
    st.integers(min_value=0, max_value=40),
)
@settings(max_examples=50, deadline=None)
def test_sender_log_accounting_invariants(messages, collect_at):
    log = SenderLog(ram_budget=10 << 20, disk_budget=10 << 20)
    sclock = 0
    for dst, nbytes in messages:
        sclock += 1
        log.append(dst, sclock, Envelope(0, dst, 0, 0, nbytes, sclock))
    total = sum(n for _, n in messages)
    assert log.bytes_total == total
    # collect a prefix for destination 0
    freed = log.collect(0, upto_sclock=collect_at)
    remaining = sum(m.env.nbytes for m in log)
    assert freed + remaining == total
    assert log.bytes_total == remaining
    # collected messages are no longer served
    assert all(m.sclock > collect_at for m in log.messages_for(0))


# -- replay determinism -------------------------------------------------------------------


def _ring(mpi, rounds=5):
    nxt = (mpi.rank + 1) % mpi.size
    prv = (mpi.rank - 1) % mpi.size
    token = float(mpi.rank)
    for r in range(rounds):
        sreq = yield from mpi.isend(nxt, nbytes=512, tag=r, data=token)
        rreq = yield from mpi.irecv(source=prv, tag=r)
        yield from mpi.waitall([sreq, rreq])
        token = 0.5 * token + 0.5 * rreq.message.data + 1.0
        yield from mpi.compute(seconds=0.01)
    total = yield from mpi.allreduce(value=token, nbytes=8)
    return round(total, 9)


_RING_BASELINE = {}


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.005, max_value=0.5),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=3,
    )
)
@slow
def test_replay_determinism_under_random_faults(fault_spec):
    """Theorem 1/2: any fault schedule yields the fault-free result."""
    if "ref" not in _RING_BASELINE:
        _RING_BASELINE["ref"] = run_job(_ring, 4, device="v2").results
    faults = ExplicitFaults([(t, r) for t, r in fault_spec])
    res = run_job(_ring, 4, device="v2", faults=faults, limit=3600.0)
    assert res.results == _RING_BASELINE["ref"]


@given(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.05, max_value=1.0),
)
@slow
def test_replay_determinism_with_checkpoints(seed, interval):
    if "ck" not in _RING_BASELINE:
        _RING_BASELINE["ck"] = run_job(
            _ring, 4, device="v2", params={"rounds": 12}
        ).results
    from repro.ft.failure import RandomFaults

    res = run_job(
        _ring, 4, device="v2", params={"rounds": 12},
        checkpointing=True, ckpt_interval=interval,
        faults=RandomFaults(interval=0.25, count=2, seed=seed),
        limit=3600.0,
    )
    assert res.results == _RING_BASELINE["ck"]


# -- checkpoint chunker -------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=400_000),  # app footprint
    st.lists(st.integers(min_value=0, max_value=9), max_size=30),  # region versions
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # dst
            st.integers(min_value=1, max_value=200_000),  # payload bytes
        ),
        max_size=25,
    ),
    st.integers(min_value=1, max_value=128),  # chunk size in KiB
)
@settings(max_examples=60, deadline=None)
def test_chunker_covers_image_exactly_and_is_stable(
    footprint, versions, saved_spec, chunk_kib
):
    """The two structural guarantees of the content-addressed chunker:
    chunk sizes partition ``image_bytes`` exactly (nothing dropped or
    double-counted, every chunk within the configured bound), and the
    decomposition is deterministic — plus full roundtrip fidelity."""
    from repro.core.replay import CheckpointImage
    from repro.store import assemble_image, chunk_image

    chunk_bytes = chunk_kib << 10
    saved, sclock = [], 0
    for dst, nbytes in saved_spec:
        sclock += 1
        saved.append(
            (dst, sclock,
             Envelope(src=5, dst=dst, tag=0, context=CTX_PT2PT,
                      nbytes=nbytes, sclock=sclock))
        )
    image = CheckpointImage(
        rank=1, seq=3, op_count=7, clock=ClockState(), saved=saved,
        delivery_log=[(2, 1, 1)], app_footprint=footprint,
        regions=tuple(versions),
    )
    m1, c1 = chunk_image(image, chunk_bytes)
    m2, c2 = chunk_image(image, chunk_bytes)
    # determinism: same image, same manifest, same digests
    assert m1 == m2 and set(c1) == set(c2)
    # exact coverage, bounded chunks
    assert sum(ref.nbytes for ref in m1.chunks) == image.image_bytes
    assert all(0 < ref.nbytes <= chunk_bytes for ref in m1.chunks)
    assert all(c1[ref.digest].nbytes == ref.nbytes for ref in m1.chunks)
    # roundtrip fidelity
    back = assemble_image(m1, c1)
    assert back.rank == 1 and back.seq == 3 and back.op_count == 7
    assert back.app_footprint == footprint
    assert back.regions == tuple(versions)
    assert back.delivery_log == [(2, 1, 1)]
    assert sorted(back.saved, key=lambda t: (t[0], t[1])) == \
        sorted(saved, key=lambda t: (t[0], t[1]))
    assert back.image_bytes == image.image_bytes


# -- scheduling policies -----------------------------------------------------------------


@given(
    st.sampled_from(["point_to_point", "all_to_all", "broadcast", "reduce"]),
    st.integers(min_value=4, max_value=24),
    st.floats(min_value=5e5, max_value=5e6),
)
@settings(max_examples=30, deadline=None)
def test_adaptive_never_worse_property(name, n, rate):
    sc = scheme(name, n, rate=rate)
    rr = simulate(sc, "round_robin", horizon=200.0, footprint=4e6)
    ad = simulate(sc, "adaptive", horizon=200.0, footprint=4e6)
    assert ad.ckpt_bandwidth <= rr.ckpt_bandwidth * 1.001
