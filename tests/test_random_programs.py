"""Randomized program equivalence (hypothesis).

Generates arbitrary (deadlock-free) MPI programs — mixes of blocking and
nonblocking point-to-point with data-dependent payloads, collectives,
compute, wildcard receives — and checks the two load-bearing properties:

1. **device independence**: P4, V1 and V2 produce identical results (the
   MPI stack above the channel is the same code; the devices may not
   change semantics);
2. **failure transparency**: V2 with injected faults produces the exact
   fault-free results (Theorems 1-2).

The program generator emits a *schedule* of global steps; every rank
derives its actions deterministically from the schedule and its rank, so
any generated program is valid and terminating by construction.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ft.failure import ExplicitFaults
from repro.runtime.mpirun import run_job

NPROCS = 4

# one step of the global schedule
step_st = st.one_of(
    st.tuples(st.just("shift"), st.integers(1, NPROCS - 1),
              st.integers(16, 4000)),  # ring shift by k, nbytes
    st.tuples(st.just("pair"), st.integers(0, 1), st.integers(16, 2000)),
    st.tuples(st.just("allreduce"), st.just(0), st.just(8)),
    st.tuples(st.just("bcast"), st.integers(0, NPROCS - 1), st.integers(8, 1000)),
    st.tuples(st.just("gather_any"), st.integers(0, NPROCS - 1), st.just(8)),
    st.tuples(st.just("compute"), st.integers(1, 30), st.just(0)),
    st.tuples(st.just("scan"), st.just(0), st.just(8)),
)


def make_program(schedule):
    def program(mpi):
        acc = float(mpi.rank + 1)
        for idx, (kind, a, b) in enumerate(schedule):
            tag = 100 + idx
            if kind == "shift":
                dst = (mpi.rank + a) % mpi.size
                src = (mpi.rank - a) % mpi.size
                sreq = yield from mpi.isend(dst, nbytes=b, tag=tag, data=acc)
                rreq = yield from mpi.irecv(source=src, tag=tag)
                yield from mpi.waitall([sreq, rreq])
                acc = 0.5 * acc + 0.5 * rreq.message.data + 0.25
            elif kind == "pair":
                peer = mpi.rank ^ (1 + a)
                if peer < mpi.size:
                    msg = yield from mpi.sendrecv(
                        peer, nbytes=b, tag=tag, data=acc,
                        source=peer, recvtag=tag,
                    )
                    acc = 0.5 * (acc + msg.data)
            elif kind == "allreduce":
                acc = yield from mpi.allreduce(value=round(acc, 9), nbytes=8)
            elif kind == "bcast":
                out = yield from mpi.bcast(
                    root=a, nbytes=b, data=round(acc, 9) if mpi.rank == a else None
                )
                acc = 0.5 * acc + 0.5 * out
            elif kind == "gather_any":
                got = yield from mpi.gather(root=a, value=round(acc, 9), nbytes=8)
                if mpi.rank == a:
                    acc += sum(got) * 0.125
            elif kind == "compute":
                yield from mpi.compute(seconds=a / 1000.0)
            elif kind == "scan":
                acc = yield from mpi.scan(value=round(acc, 9), nbytes=8)
            acc = acc % 1000.0  # keep numbers bounded
        total = yield from mpi.allreduce(value=round(acc, 9), nbytes=8)
        return round(total, 6)

    return program


@given(st.lists(step_st, min_size=2, max_size=10))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_devices_agree_on_random_programs(schedule):
    prog = make_program(schedule)
    ref = run_job(prog, NPROCS, device="p4", limit=3600.0).results
    assert run_job(prog, NPROCS, device="v1", limit=3600.0).results == ref
    assert run_job(prog, NPROCS, device="v2", limit=3600.0).results == ref


@given(
    st.lists(step_st, min_size=3, max_size=10),
    st.floats(min_value=0.001, max_value=0.2),
    st.integers(0, NPROCS - 1),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_v2_faults_transparent_on_random_programs(schedule, t_kill, victim):
    prog = make_program(schedule)
    ref = run_job(prog, NPROCS, device="v2", limit=3600.0).results
    res = run_job(
        prog, NPROCS, device="v2",
        faults=ExplicitFaults([(t_kill, victim)]), limit=3600.0,
    )
    assert res.results == ref


@given(
    st.lists(step_st, min_size=3, max_size=8),
    st.integers(0, 10_000),
)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_v2_checkpointed_faults_transparent_on_random_programs(schedule, seed):
    from repro.ft.failure import RandomFaults

    prog = make_program(schedule)
    ref = run_job(prog, NPROCS, device="v2", limit=3600.0).results
    res = run_job(
        prog, NPROCS, device="v2",
        checkpointing=True, ckpt_interval=0.03,
        faults=RandomFaults(interval=0.05, count=2, seed=seed),
        limit=3600.0,
    )
    assert res.results == ref
