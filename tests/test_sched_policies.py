"""Unit tests for the §4.6.2 checkpoint-scheduling study."""

import numpy as np
import pytest

from repro.sched import SCHEMES, make_policy, scheme, simulate
from repro.sched.policies import Adaptive, RoundRobin


def test_scheme_shapes_and_diagonals():
    for name in SCHEMES:
        sc = scheme(name, 8)
        assert sc.rate.shape == (8, 8)
        assert np.all(np.diag(sc.rate) == 0)


def test_broadcast_is_root_heavy():
    sc = scheme("broadcast", 8)
    send = sc.send_rate()
    assert send[0] == pytest.approx(7e6)
    assert np.all(send[1:] == 0)


def test_reduce_is_root_receiving():
    sc = scheme("reduce", 8)
    assert sc.recv_rate()[0] == pytest.approx(7e6)
    assert np.all(sc.recv_rate()[1:] == 0)


def test_round_robin_cycles():
    p = RoundRobin(4)
    z = np.zeros(4)
    picks = [p.pick(z, z, z) for _ in range(8)]
    assert picks == [0, 1, 2, 3, 0, 1, 2, 3]


def test_adaptive_prefers_high_ratio():
    p = Adaptive(4)
    logged = np.zeros(4)
    sent = np.array([100.0, 1.0, 100.0, 100.0])
    recv = np.array([1.0, 100.0, 1.0, 1.0])
    assert p.pick(logged, sent, recv) == 1  # ratio 100, everyone else 0.01


def test_adaptive_degenerates_to_rotation_when_symmetric():
    p = Adaptive(4)
    logged = np.zeros(4)
    flat = np.full(4, 10.0)
    picks = [p.pick(logged, flat, flat) for _ in range(8)]
    assert picks == [0, 1, 2, 3, 0, 1, 2, 3]


def test_adaptive_skips_pure_senders():
    p = Adaptive(3)
    logged = np.zeros(3)
    sent = np.array([100.0, 0.0, 0.0])
    recv = np.array([0.0, 50.0, 50.0])
    picks = [p.pick(logged, sent, recv) for _ in range(4)]
    assert 0 not in picks  # the pure sender is never checkpointed


def test_make_policy_rejects_unknown():
    with pytest.raises(ValueError):
        make_policy("greedy", 4)


def test_simulate_outcome_consistency():
    sc = scheme("point_to_point", 8)
    out = simulate(sc, "round_robin", horizon=100.0)
    assert out.checkpoints > 0
    assert out.ckpt_bytes > 0
    assert out.ckpt_bandwidth == pytest.approx(out.ckpt_bytes / out.horizon)
    assert out.peak_log >= out.mean_log > 0


def test_adaptive_never_worse_bandwidth():
    for name in SCHEMES:
        for n in (8, 16):
            sc = scheme(name, n, rate=2e6)
            rr = simulate(sc, "round_robin", footprint=4e6)
            ad = simulate(sc, "adaptive", footprint=4e6)
            assert ad.ckpt_bandwidth <= rr.ckpt_bandwidth * 1.001, (name, n)


def test_adaptive_beats_round_robin_on_broadcast():
    sc = scheme("broadcast", 16, rate=2e6)
    rr = simulate(sc, "round_robin", footprint=4e6)
    ad = simulate(sc, "adaptive", footprint=4e6)
    assert rr.ckpt_bandwidth / ad.ckpt_bandwidth > 1.5
    assert ad.peak_log < rr.peak_log


def test_broadcast_advantage_grows_with_n():
    def ratio(n):
        sc = scheme("broadcast", n, rate=2e6)
        rr = simulate(sc, "round_robin", footprint=4e6)
        ad = simulate(sc, "adaptive", footprint=4e6)
        return rr.ckpt_bandwidth / ad.ckpt_bandwidth

    assert ratio(32) > ratio(8)
