"""The gang-scheduling control plane (repro.serve).

Covers the admission queue (FIFO within a tenant, head-blocking,
cross-tenant fair share), all-or-nothing gang placement, per-job
namespace isolation on the shared fabric / EL shards / store replicas,
rank-kill isolation between co-resident jobs (with clean audits on both
sides), per-job metrics-registry isolation, the plane's wire API, and
``run_job`` acting as a single-job client of a plane.
"""

import pytest

from repro.runtime.cluster import Cluster
from repro.runtime.config import DEFAULT_TESTBED
from repro.runtime.fabric import ConnectionRefused, Fabric, ScopedFabric
from repro.runtime.mpirun import run_job
from repro.runtime.results import JobResult
from repro.runtime.session import Session
from repro.serve import ControlPlane, JobSpec, load_plan
from repro.workloads import token_ring

TINY = {"rounds": 3, "nbytes": 256}


def _p4(nranks=2, tenant="default", **kw):
    return JobSpec(
        workload=token_ring, nranks=nranks, device="p4", tenant=tenant,
        params=dict(kw.pop("params", TINY)), **kw,
    )


def _v2(nranks=4, tenant="default", **kw):
    return JobSpec(
        workload=token_ring, nranks=nranks, device="v2", tenant=tenant,
        params=dict(kw.pop("params", TINY)), **kw,
    )


# -- namespaces --------------------------------------------------------------


def test_scoped_fabric_prefixes_all_but_shared_names():
    cluster = Cluster(DEFAULT_TESTBED, seed=0)
    fabric = Fabric(cluster)
    view = ScopedFabric(fabric, "j0/", shared=frozenset({"el:0"}))
    assert view.scoped("dispatcher") == "j0/dispatcher"
    assert view.scoped("el:0") == "el:0"

    host = cluster.add_aux("svc-host")
    view.listen("svc:0", host)
    cn = cluster.add_cn("cn0")
    # the listener landed on the prefixed name, not the bare one
    with pytest.raises(ConnectionRefused):
        fabric.connect(cn, "svc:0")
    assert fabric.connect(cn, "j0/svc:0") is not None


def test_cluster_namespaces_keep_host_names_disjoint():
    cluster = Cluster(DEFAULT_TESTBED, seed=0)
    cluster.add_cn("cn0", namespace="a/")
    cluster.add_aux("cn0", namespace="b/")  # same bare name, other namespace
    with pytest.raises(ValueError):
        cluster.add_cn("cn0", namespace="a/")


# -- plans -------------------------------------------------------------------


def test_jobspec_validation():
    with pytest.raises(ValueError):
        JobSpec(workload=token_ring, nranks=2, device="v1")
    with pytest.raises(ValueError):
        JobSpec(workload=token_ring, nranks=0)
    with pytest.raises(ValueError):  # faults need the FT device
        JobSpec(workload=token_ring, nranks=2, device="p4",
                fault={"kind": "kill", "rank": 0, "at": 1.0})


def test_load_plan_rejects_unknown_keys(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text('[{"workload": "token_ring", "nranks": 2, "bogus": 1}]')
    with pytest.raises(ValueError, match="bogus"):
        load_plan(str(path))


def test_load_plan_bare_list_defaults_tenant(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text('[{"workload": "token_ring", "nranks": 2}]')
    tenants, jobs = load_plan(str(path))
    assert tenants == {"default": 1.0}
    assert jobs[0].nranks == 2 and jobs[0].device == "p4"


# -- admission ---------------------------------------------------------------


def test_fifo_within_tenant_and_capacity_gating():
    plane = ControlPlane(capacity=2, svc_slots=0)
    handles = [
        plane.submit(_p4(2, params={"rounds": 50, "nbytes": 2048}))
        for _ in range(3)
    ]
    plane.drain()
    starts = [h.start_t for h in handles]
    assert starts == sorted(starts)  # admitted in submit order
    assert handles[0].start_t == 0.0
    assert handles[1].start_t > 0.0  # had to wait for job 0's gang
    assert all(h.state == "done" for h in handles)
    assert plane.finish()["completed"] == 3


def test_gang_is_all_or_nothing_with_tenant_head_blocking():
    plane = ControlPlane(capacity=4, svc_slots=0)
    big = plane.submit(_p4(3, tenant="alpha",
                           params={"rounds": 100, "nbytes": 4096}))
    blocked = plane.submit(_p4(2, tenant="alpha"))  # 1 slot free: no gang
    behind = plane.submit(_p4(1, tenant="alpha"))  # would fit, but FIFO
    other = plane.submit(_p4(1, tenant="beta"))  # other tenant: may run
    plane.drain()
    big_done = big.start_t + big.result.elapsed
    # never a partial gang: the 2-rank job waited for the 3-rank release
    assert blocked.start_t >= big_done - 1e-9
    assert blocked.wait_s > 0
    # a later same-tenant job does not leapfrog its blocked head ...
    assert behind.start_t >= blocked.start_t
    # ... but another tenant's 1-rank job takes the free slot immediately
    assert other.start_t == 0.0


def test_fair_share_tracks_tenant_weights():
    plane = ControlPlane(
        capacity=2, svc_slots=0, tenants={"alpha": 3.0, "beta": 1.0}
    )
    spec = {"rounds": 50, "nbytes": 2048}
    handles = (
        [plane.submit(_p4(2, tenant="alpha", params=spec)) for _ in range(9)]
        + [plane.submit(_p4(2, tenant="beta", params=spec)) for _ in range(3)]
    )
    plane.drain()
    # admissions over the saturation window (both tenants still queued):
    # rank-weighted share per tenant tracks the 3:1 weights within 20%
    order = sorted(handles, key=lambda h: h.start_t)[:8]
    alpha = sum(h.spec.nranks for h in order if h.spec.tenant == "alpha")
    beta = sum(h.spec.nranks for h in order if h.spec.tenant == "beta")
    share = alpha / (alpha + beta)
    assert abs(share - 0.75) <= 0.2 * 0.75
    summary = plane.finish()
    assert summary["completed"] == 12
    assert summary["tenants"]["alpha"]["served_ranks"] == 18.0


def test_submit_at_future_time_defers_enqueue():
    plane = ControlPlane(capacity=4, svc_slots=0)
    handle = plane.submit(_p4(2), at=1.5)
    assert handle.state == "created"
    plane.wait(handle)
    assert handle.submit_t == 1.5
    assert handle.start_t >= 1.5


def test_oversized_gang_is_rejected_outright():
    plane = ControlPlane(capacity=2, svc_slots=0)
    with pytest.raises(ValueError, match="pool has 2"):
        plane.submit(_p4(4))


# -- isolation ---------------------------------------------------------------


def test_rank_kill_recovers_without_touching_the_neighbour_job():
    plane = ControlPlane(capacity=8, svc_slots=2)
    faulty = plane.submit(_v2(
        4, tenant="alpha", params={"rounds": 400, "nbytes": 16384},
        checkpointing=True, ckpt_interval=0.05,
        fault={"kind": "kill", "rank": 1, "at": 0.08}, trace=True,
    ))
    clean = plane.submit(_v2(
        4, tenant="beta", params={"rounds": 400, "nbytes": 16384},
    ))
    plane.drain()
    a, b = faulty.result, clean.result
    # both ran concurrently on the shared cluster
    assert faulty.start_t == 0.0 and clean.start_t == 0.0
    # the kill was detected and recovered entirely inside job A ...
    assert a.restarts >= 1
    assert a.metrics.total("ft.faults") >= 1
    assert a.audit is not None and a.audit.clean
    # ... with per-fault recovery attribution from its private trace
    assert a.extras["mttr"] is not None
    # job B never saw a fault: no restarts, nothing in its registry,
    # and its own audit is clean over the shared EL/store services
    assert b.restarts == 0
    assert b.metrics.total("ft.faults", default=0.0) == 0.0
    assert b.audit is not None and b.audit.clean
    assert plane.finish()["audit_violations"] == 0


def test_finished_jobs_are_evicted_from_shared_services():
    plane = ControlPlane(capacity=4, svc_slots=1)
    handle = plane.submit(_v2(
        2, params={"rounds": 200, "nbytes": 8192},
        checkpointing=True, ckpt_interval=0.05,
    ))
    plane.wait(handle)
    assert handle.result.checkpoints > 0
    tag = handle.result.extras["namespace"]
    for el in plane.loggers:
        assert not any(k[0] == tag for k in el.events)
    for srv in plane.servers:
        assert not any(k[0] == tag for k in srv.manifests)


def test_per_job_metrics_registries_are_isolated():
    plane = ControlPlane(capacity=8, svc_slots=2)
    h1 = plane.submit(_v2(2))
    h2 = plane.submit(_v2(2))
    plane.drain()
    r1, r2 = h1.result, h2.result
    assert r1.metrics is not r2.metrics
    assert r1.metrics is not plane.metrics
    # each job's registry carries its own ranks' client traffic ...
    assert r1.metrics.total("el.roundtrips") > 0
    assert r2.metrics.total("el.roundtrips") > 0
    # ... and none of it leaks into the plane's registry, which keeps
    # only shared-infrastructure and admission metrics
    assert plane.metrics.total("el.roundtrips", default=-1.0) == -1.0
    assert not any(m.name.startswith("ft.") for m in plane.metrics)
    assert plane.metrics.total("serve.completed") == 2


# -- the wire API ------------------------------------------------------------


def test_plane_listener_serves_submit_and_wait():
    plane = ControlPlane(capacity=4, svc_slots=0)
    client = plane.cluster.add_cn("client")
    sess = Session(
        plane.sim, plane.fabric, client, "plane:0",
        metrics=plane.metrics, labels={"rank": 99},
    )
    got = {}

    def run():
        sess.connect_now()
        yield from sess.write(64, ("SUBMIT", {
            "workload": "token_ring", "nranks": 2,
            "params": {"rounds": 3, "nbytes": 256},
        }))
        got["job"] = yield from sess.read_record()
        yield from sess.write(64, ("WAIT", got["job"][1]))
        got["done"] = yield from sess.read_record()
        yield from sess.write(64, ("WAIT", 999))
        got["err"] = yield from sess.read_record()

    proc = plane.sim.spawn(run(), name="client")
    plane.sim.run_until(proc.done, limit=60.0)
    kind, job_id = got["job"]
    assert kind == "JOB"
    assert got["done"] == ("DONE", job_id, "done")
    assert got["err"][0] == "ERR"
    assert plane.handles[job_id].result.nprocs == 2


def test_run_job_as_a_control_plane_client():
    plane = ControlPlane(capacity=4, svc_slots=1)
    res = run_job(token_ring, 2, device="p4", plane=plane, params=dict(TINY))
    assert isinstance(res, JobResult)
    assert res.nprocs == 2 and res.device == "p4"
    assert res.extras["tenant"] == "default"
    # per-cluster instruments cannot ride through a shared plane
    with pytest.raises(ValueError, match="control plane"):
        run_job(token_ring, 2, plane=plane, profile=True)
    with pytest.raises(ValueError, match="not supported"):
        run_job(token_ring, 2, plane=plane, el_servers=3)
