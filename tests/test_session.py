"""The shared session/RPC layer (repro.runtime.session).

Unit-level coverage of the mechanisms every client and service now
stands on: reconnect epochs (bump on adoption, stale-epoch and
stale-drop rejection), the typed-record framing discipline on both
sides of the wire, the deterministic backoff schedule of
:meth:`Session.connect`, and the :class:`ServiceBase`
listen/accept/stop/start lifecycle (no process or connection leaks, a
stopped service refuses connects, a restarted one serves again).
"""

from repro.runtime.cluster import Cluster
from repro.runtime.config import DEFAULT_TESTBED
from repro.runtime.fabric import ConnectionRefused, Fabric
from repro.runtime.retry import RetryPolicy
from repro.runtime.session import ServiceBase, Session, framed
from repro.simnet.streams import Disconnected


class EchoService(ServiceBase):
    """Echoes framed records; answers ("BAD",) with unframed garbage."""

    metric_ns = "echo"

    def _serve(self, end, hello):
        while True:
            try:
                msg = yield from self._read_record(end)
            except Disconnected:
                return
            try:
                if msg == ("BAD",):
                    yield from end.write(16, 456)  # deliberately unframed
                else:
                    yield from end.write(16, ("ECHO", msg))
            except Disconnected:
                return


def _deploy(seed=0):
    cluster = Cluster(DEFAULT_TESTBED, seed=seed)
    fabric = Fabric(cluster)
    host = cluster.add_aux("svc-host")
    svc = EchoService(
        cluster.sim, host, fabric, "echo:0", metrics=cluster.metrics
    )
    cn = cluster.add_cn("cn0")
    return cluster, fabric, svc, cn


def _session(cluster, fabric, cn, target="echo:0", **kw):
    return Session(
        cluster.sim, fabric, cn, target, metrics=cluster.metrics,
        labels={"rank": 0}, **kw,
    )


# -- framing -----------------------------------------------------------------


def test_framed_accepts_tagged_tuples_and_allowed_payloads():
    assert framed(("KIND", 1, 2))
    assert framed(("KIND",))
    assert not framed(())  # empty tuple: no tag
    assert not framed((1, "KIND"))  # tag must come first
    assert not framed("KIND")  # a bare string is not a record
    assert not framed(None)
    assert framed(3.5, payload_types=(float,))
    assert not framed(3.5, payload_types=(int,))


def test_server_rejects_unframed_records_and_keeps_serving():
    cluster, fabric, svc, cn = _deploy()
    svc.start()
    sess = _session(cluster, fabric, cn)
    got = {}

    def run():
        sess.connect_now()
        yield from sess.write(16, 123)  # unframed: skipped, counted
        yield from sess.write(16, ("PING", 1))  # still served after garbage
        got["reply"] = yield from sess.read_record()

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["reply"] == ("ECHO", ("PING", 1))
    assert cluster.metrics.total("echo.protocol_errors") == 1


def test_client_rejects_unframed_replies_and_keeps_reading():
    cluster, fabric, svc, cn = _deploy()
    svc.start()
    sess = _session(cluster, fabric, cn)
    got = {}

    def run():
        sess.connect_now()
        yield from sess.write(16, ("BAD",))  # provokes an unframed reply
        yield from sess.write(16, ("PING", 2))
        got["reply"] = yield from sess.read_record()  # skips the garbage

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["reply"] == ("ECHO", ("PING", 2))
    assert sess.protocol_errors == 1
    assert cluster.metrics.total("session.protocol_errors") == 1


# -- epochs ------------------------------------------------------------------


def test_epoch_bumps_on_reconnect():
    """A service crash breaks the link; the reconnect installs the new
    stream under a bumped epoch and the session reports up again."""
    cluster, fabric, svc, cn = _deploy()
    svc.start()
    sess = _session(cluster, fabric, cn)
    got = {}

    def run():
        sess.connect_now()
        got["e1"] = sess.epoch
        got["up1"] = sess.up()
        svc.stop()
        got["up_after_crash"] = sess.up()
        sess.drop()
        svc.start()
        end = yield from sess.connect()
        got["reconnected"] = end is not None
        got["e2"] = sess.epoch
        got["up2"] = sess.up()

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["e1"] == 1 and got["up1"] is True
    assert got["up_after_crash"] is False
    assert got["reconnected"] is True
    assert got["e2"] == 2 and got["up2"] is True


def test_stale_epoch_and_stale_drop_are_rejected():
    """Loops belonging to a replaced stream must neither act (stale
    epoch) nor tear down the replacement (stale drop notification)."""
    cluster, fabric, svc, cn = _deploy()
    svc.start()
    sess = _session(cluster, fabric, cn)
    got = {}

    def run():
        end1 = sess.connect_now()
        e1 = sess.epoch
        end2 = sess.connect_now()  # replacement stream
        got["stale_old"] = sess.stale(e1)
        got["stale_new"] = sess.stale(sess.epoch)
        got["drop_old"] = sess.drop(end1)  # a replaced loop noticed a break
        got["up_after_stale_drop"] = sess.up()
        got["drop_new"] = sess.drop(end2)
        got["up_after_real_drop"] = sess.up()
        yield cluster.sim.timeout(0.0)

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["stale_old"] is True and got["stale_new"] is False
    assert got["drop_old"] is False and got["up_after_stale_drop"] is True
    assert got["drop_new"] is True and got["up_after_real_drop"] is False


# -- backoff -----------------------------------------------------------------


def _retry_schedule(seed):
    """(attempt, delay) pairs of a connect against a missing service."""
    cluster = Cluster(DEFAULT_TESTBED, seed=seed)
    fabric = Fabric(cluster)
    cn = cluster.add_cn("cn0")
    seen = []
    sess = Session(
        cluster.sim, fabric, cn, "nobody:0",
        policy=RetryPolicy.from_config(cluster.cfg, max_tries=6),
        rng=cluster.rng.stream("session-test"),
        on_retry=lambda a, d: seen.append((a, d)),
        metrics=cluster.metrics,
    )
    got = {}

    def run():
        got["end"] = yield from sess.connect()

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["end"] is None  # budget drained; session never came up
    assert not sess.up()
    return seen


def test_backoff_schedule_is_deterministic():
    a = _retry_schedule(seed=7)
    b = _retry_schedule(seed=7)
    assert a == b  # same seed, same jittered schedule, to the bit
    assert [attempt for attempt, _ in a] == list(range(6))
    cap = DEFAULT_TESTBED.reconnect_cap * (1 + DEFAULT_TESTBED.reconnect_jitter)
    assert all(0 < d <= cap for _, d in a)
    c = _retry_schedule(seed=8)
    assert a != c  # the jitter really is seed-dependent


# -- service lifecycle -------------------------------------------------------


def test_service_stop_breaks_conns_and_refuses_connects():
    cluster, fabric, svc, cn = _deploy()
    svc.start()
    sess = _session(cluster, fabric, cn)
    got = {}

    def run():
        sess.connect_now()
        yield from sess.write(16, ("PING", 1))
        got["r1"] = yield from sess.read_record()
        svc.stop()
        got["listening"] = svc.listening
        got["conn_up"] = sess.up()
        try:
            sess.connect_now()
            got["refused"] = False
        except ConnectionRefused:
            got["refused"] = True

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["r1"] == ("ECHO", ("PING", 1))
    assert got["listening"] is False
    assert got["conn_up"] is False and got["refused"] is True
    assert not svc._procs and not svc._conns  # nothing leaked across stop


def test_service_start_after_stop_serves_again():
    """The stop/start durability contract the supervisor relies on."""
    cluster, fabric, svc, cn = _deploy()
    svc.start()
    sess = _session(cluster, fabric, cn)
    got = {}

    def run():
        sess.connect_now()
        yield from sess.write(16, ("PING", 1))
        got["r1"] = yield from sess.read_record()
        svc.stop()
        svc.stop()  # idempotent: a second stop must not blow up
        svc.start()
        got["listening"] = svc.listening
        sess.connect_now()
        got["epoch"] = sess.epoch
        yield from sess.write(16, ("PING", 2))
        got["r2"] = yield from sess.read_record()

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["r1"] == ("ECHO", ("PING", 1))
    assert got["listening"] is True
    assert got["epoch"] == 2  # the relaunch link is a new epoch
    assert got["r2"] == ("ECHO", ("PING", 2))


# -- heartbeat ---------------------------------------------------------------


def _absorb(sess):
    """A reader loop that only ever sees PONGs (absorbed in read_record)."""
    while True:
        end = sess.end
        if end is None:
            return
        try:
            yield from sess.read_record(end)
        except Disconnected:
            return


def test_heartbeat_pongs_record_rtt_and_stay_invisible():
    """PINGs are answered inside the service's _read_record (the server
    loop never sees them), PONGs are absorbed inside the client's
    read_record (the reader loop never sees them) — the only visible
    effect is the RTT histogram."""
    cluster, fabric, svc, cn = _deploy()
    svc.start()
    sess = _session(cluster, fabric, cn)
    sess.connect_now()
    cluster.sim.spawn(sess.heartbeat(0.1, timeout=1.0))
    cluster.sim.spawn(_absorb(sess))
    cluster.sim.run(until=2.0)
    rtt = [m for m in cluster.metrics if m.name == "session.rtt_s"]
    assert len(rtt) == 1 and rtt[0].count >= 15
    assert rtt[0].min > 0  # a simulated round trip takes simulated time
    assert sess.last_pong > 1.5
    assert not sess.hb_suspect
    assert cluster.metrics.total("session.hb_timeouts") == 0
    # the 4-tuple PINGs never reached the echo loop as records
    assert cluster.metrics.total("echo.protocol_errors") == 0


def test_heartbeat_times_out_under_partition_and_recovers():
    """A PartitionWindow keeps the socket up but stops the PONGs: the
    session must turn hb_suspect past the timeout, and the first PONG
    after the heal must clear it."""
    cluster, fabric, svc, cn = _deploy()
    svc.start()
    sess = _session(cluster, fabric, cn)
    sess.connect_now()
    cluster.sim.spawn(sess.heartbeat(0.1, timeout=0.5))
    cluster.sim.spawn(_absorb(sess))
    got = {}

    def chaos():
        yield cluster.sim.timeout(1.0)
        cluster.net.partition([cn], [svc.host], 2.0)
        yield cluster.sim.timeout(1.5)
        got["suspect_mid"] = sess.hb_suspect  # t=2.5: inside the cut

    cluster.sim.spawn(chaos())
    cluster.sim.run(until=6.0)
    assert got["suspect_mid"] is True
    assert cluster.metrics.total("session.hb_timeouts") >= 1
    assert not sess.hb_suspect  # healed: the deferred PONGs cleared it
    assert sess.up()  # the socket never broke — that is the point


# -- backpressure ------------------------------------------------------------


def test_backpressure_metrics_surface_stalled_writes():
    """Writes bigger than the peer's window stall on credit; the session
    folds the stall time/count and the receive backlog into the
    ``session.*`` family."""
    cluster, fabric, svc, cn = _deploy()
    got = {}
    svc.start()
    sess = _session(cluster, fabric, cn)

    def run():
        sess.connect_now()
        for i in range(4):
            # 100 KB > the 64 KiB stream window: every write after the
            # first waits for the server to drain the previous one
            yield from sess.write(100_000, ("BULK", i))
        got["reply"] = yield from sess.read_record()

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["reply"] == ("ECHO", ("BULK", 0))
    assert cluster.metrics.total("session.stalled_writes") >= 2
    assert cluster.metrics.total("session.stalled_write_s") > 0
    depth = [m for m in cluster.metrics if m.name == "session.queue_depth"]
    assert len(depth) == 1 and depth[0].peak >= 1  # echoes queued unread
