"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simnet import (
    DeadlockError,
    Gate,
    Killed,
    Queue,
    Semaphore,
    SimError,
    Simulator,
    all_of,
    any_of,
)


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.after(2.0, lambda: order.append("b"))
    sim.after(1.0, lambda: order.append("a"))
    sim.after(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.after(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_limit():
    sim = Simulator()
    hits = []
    sim.after(1.0, lambda: hits.append(1))
    sim.after(5.0, lambda: hits.append(2))
    sim.run(until=2.0)
    assert hits == [1]
    assert sim.now == 2.0
    sim.run()
    assert hits == [1, 2]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.after(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimError):
        sim.at(0.5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.after(-1.0, lambda: None)


def test_future_resolution_and_value():
    sim = Simulator()
    fut = sim.future("f")
    assert not fut.done
    fut.resolve(42)
    assert fut.done
    assert fut.value == 42


def test_future_double_resolution_rejected():
    sim = Simulator()
    fut = sim.future("f")
    fut.resolve(1)
    with pytest.raises(SimError):
        fut.resolve(2)
    assert fut.resolve_if_pending(3) is False


def test_future_failure_propagates_on_value():
    sim = Simulator()
    fut = sim.future("f")
    fut.fail(ValueError("boom"))
    with pytest.raises(ValueError):
        _ = fut.value


def test_future_callback_after_done_fires_immediately():
    sim = Simulator()
    fut = sim.future("f")
    fut.resolve("x")
    got = []
    fut.add_done_callback(lambda f: got.append(f.value))
    assert got == ["x"]


def test_process_returns_value():
    sim = Simulator()

    def prog():
        yield sim.timeout(1.0)
        return "done"

    p = sim.spawn(prog(), "p")
    assert sim.run_until(p.done) == "done"
    assert sim.now == 1.0


def test_process_sleep_composite():
    sim = Simulator()

    def prog():
        yield from sim.sleep(0.5)
        yield from sim.sleep(0.5)
        return sim.now

    p = sim.spawn(prog(), "p")
    assert sim.run_until(p.done) == 1.0


def test_timeout_carries_value():
    sim = Simulator()

    def prog():
        got = yield sim.timeout(1.0, value="tick")
        return got

    p = sim.spawn(prog(), "p")
    assert sim.run_until(p.done) == "tick"


def test_process_crash_surfaces_in_run():
    sim = Simulator()

    def prog():
        yield sim.timeout(1.0)
        raise RuntimeError("app bug")

    sim.spawn(prog(), "buggy")
    with pytest.raises(SimError, match="buggy"):
        sim.run()


def test_supervised_process_crash_is_contained():
    sim = Simulator()

    def prog():
        yield sim.timeout(1.0)
        raise RuntimeError("app bug")

    p = sim.spawn(prog(), "buggy", supervised=True)
    sim.run()
    assert isinstance(p.done.exception, RuntimeError)


def test_kill_stops_process_and_fails_done():
    sim = Simulator()
    steps = []

    def prog():
        steps.append("start")
        yield sim.timeout(10.0)
        steps.append("never")

    p = sim.spawn(prog(), "victim")
    sim.after(1.0, p.kill)
    sim.run()
    assert steps == ["start"]
    assert isinstance(p.done.exception, Killed)
    assert not p.alive


def test_killed_process_not_resumed_by_pending_future():
    sim = Simulator()
    resumed = []

    def prog():
        yield sim.timeout(5.0)
        resumed.append(True)

    p = sim.spawn(prog(), "victim")
    sim.after(1.0, p.kill)
    sim.run()
    assert resumed == []


def test_yield_non_future_is_an_error():
    sim = Simulator()

    def prog():
        yield 42

    sim.spawn(prog(), "bad")
    with pytest.raises(SimError):
        sim.run()


def test_run_until_deadlock_detection():
    sim = Simulator()

    def prog():
        yield sim.future("never")

    p = sim.spawn(prog(), "stuck")
    with pytest.raises(DeadlockError, match="stuck"):
        sim.run_until(p.done)


def test_run_until_sim_time_limit():
    sim = Simulator()

    def prog():
        yield sim.timeout(100.0)

    p = sim.spawn(prog(), "slow")
    with pytest.raises(SimError, match="limit"):
        sim.run_until(p.done, limit=10.0)


def test_all_of_collects_values_in_order():
    sim = Simulator()
    f1, f2 = sim.future("f1"), sim.future("f2")
    combined = all_of(sim, [f1, f2])
    f2.resolve("b")
    assert not combined.done
    f1.resolve("a")
    assert combined.value == ["a", "b"]


def test_all_of_empty_is_immediate():
    sim = Simulator()
    assert all_of(sim, []).value == []


def test_all_of_fails_fast():
    sim = Simulator()
    f1, f2 = sim.future("f1"), sim.future("f2")
    combined = all_of(sim, [f1, f2])
    f1.fail(ValueError("x"))
    assert combined.done
    assert isinstance(combined.exception, ValueError)


def test_any_of_reports_winner_index():
    sim = Simulator()
    f1, f2 = sim.future("f1"), sim.future("f2")
    first = any_of(sim, [f1, f2])
    f2.resolve("late riser")
    assert first.value == (1, "late riser")
    f1.resolve("ignored")
    assert first.value == (1, "late riser")


def test_queue_fifo_order():
    sim = Simulator()
    q = Queue(sim)
    q.put(1)
    q.put(2)

    def prog():
        a = yield q.get()
        b = yield q.get()
        return (a, b)

    p = sim.spawn(prog(), "reader")
    assert sim.run_until(p.done) == (1, 2)


def test_queue_blocks_until_put():
    sim = Simulator()
    q = Queue(sim)

    def reader():
        item = yield q.get()
        return (sim.now, item)

    p = sim.spawn(reader(), "reader")
    sim.after(2.0, lambda: q.put("x"))
    assert sim.run_until(p.done) == (2.0, "x")


def test_queue_multiple_getters_fifo():
    sim = Simulator()
    q = Queue(sim)
    got = []

    def reader(tag):
        item = yield q.get()
        got.append((tag, item))

    sim.spawn(reader("r1"), "r1")
    sim.spawn(reader("r2"), "r2")
    sim.after(1.0, lambda: q.put("first"))
    sim.after(2.0, lambda: q.put("second"))
    sim.run()
    assert got == [("r1", "first"), ("r2", "second")]


def test_queue_break_fails_pending_and_future_gets():
    sim = Simulator()
    q = Queue(sim)

    def reader():
        yield q.get()

    p = sim.spawn(reader(), "reader", supervised=True)
    sim.after(1.0, lambda: q.break_(ConnectionError("gone")))
    sim.run()
    assert isinstance(p.done.exception, ConnectionError)
    assert isinstance(q.get().exception, ConnectionError)


def test_queue_try_get():
    sim = Simulator()
    q = Queue(sim)
    assert q.try_get() == (False, None)
    q.put(9)
    assert q.try_get() == (True, 9)


def test_gate_blocks_until_open():
    sim = Simulator()
    gate = Gate(sim)

    def prog():
        yield gate.waitfor()
        return sim.now

    p = sim.spawn(prog(), "p")
    sim.after(3.0, gate.open)
    assert sim.run_until(p.done) == 3.0


def test_gate_open_is_level_triggered():
    sim = Simulator()
    gate = Gate(sim, opened=True)

    def prog():
        yield gate.waitfor()
        return "through"

    p = sim.spawn(prog(), "p")
    assert sim.run_until(p.done) == "through"


def test_semaphore_counts_and_blocks():
    sim = Simulator()
    sem = Semaphore(sim, 2)
    log = []

    def worker(tag, hold):
        yield sem.acquire()
        log.append((sim.now, tag, "in"))
        yield sim.timeout(hold)
        sem.release()

    sim.spawn(worker("a", 5.0), "a")
    sim.spawn(worker("b", 5.0), "b")
    sim.spawn(worker("c", 1.0), "c")
    sim.run()
    assert log[0][1:] == ("a", "in")
    assert log[1][1:] == ("b", "in")
    assert log[2] == (5.0, "c", "in")


def test_semaphore_bulk_acquire_fifo():
    sim = Simulator()
    sem = Semaphore(sim, 0)
    order = []

    def worker(tag, need):
        yield sem.acquire(need)
        order.append(tag)

    sim.spawn(worker("big", 3), "big")
    sim.spawn(worker("small", 1), "small")

    def feeder():
        for _ in range(4):
            yield sim.timeout(1.0)
            sem.release(1)

    sim.spawn(feeder(), "feeder")
    sim.run()
    # FIFO: the big request is served first even though small could go sooner
    assert order == ["big", "small"]


def test_semaphore_break_fails_waiters():
    sim = Simulator()
    sem = Semaphore(sim, 0)

    def worker():
        yield sem.acquire()

    p = sim.spawn(worker(), "w", supervised=True)
    sim.after(1.0, lambda: sem.break_(ConnectionError("dead")))
    sim.run()
    assert isinstance(p.done.exception, ConnectionError)


def test_stop_halts_event_loop():
    sim = Simulator()
    hits = []
    sim.after(1.0, lambda: hits.append(1))
    sim.after(2.0, sim.stop)
    sim.after(3.0, lambda: hits.append(3))
    sim.run()
    assert hits == [1]
    assert sim.now == 2.0
