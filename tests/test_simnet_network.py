"""Unit tests for hosts, the NIC serialization model and transfers."""

import pytest

from repro.simnet import Host, HostDown, LinkConfig, Network, Simulator


def make_net(**link_kw):
    sim = Simulator()
    net = Network(sim, LinkConfig(**link_kw))
    a = net.add_host(Host(sim, "a"))
    b = net.add_host(Host(sim, "b"))
    return sim, net, a, b


def test_duplicate_host_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_host(Host(sim, "x"))
    with pytest.raises(ValueError):
        net.add_host(Host(sim, "x"))


def test_single_transfer_arrival_time_matches_analytic():
    sim, net, a, b = make_net()
    arrivals = []
    t = net.transfer(a, b, 1000, lambda: arrivals.append(sim.now))
    assert t == pytest.approx(net.one_way_time(1000))
    sim.run()
    assert arrivals == [pytest.approx(t)]


def test_zero_byte_transfer_has_fixed_latency():
    sim, net, a, b = make_net()
    t = net.transfer(a, b, 0, lambda: None)
    lk = net.link
    expected = (
        lk.send_cpu
        + lk.wire_latency
        + lk.frame_overhead / lk.bandwidth
        + lk.per_segment_gap
        + lk.recv_cpu
    )
    assert t == pytest.approx(expected)


def test_back_to_back_transfers_serialize_on_sender_nic():
    sim, net, a, b = make_net()
    t1 = net.transfer(a, b, 100_000, lambda: None)
    t2 = net.transfer(a, b, 100_000, lambda: None)
    dur = (100_000 + net.link.frame_overhead) / net.link.bandwidth
    assert t2 - t1 >= dur * 0.99  # second waits for the NIC


def test_transfers_from_two_sources_serialize_on_receiver_nic():
    sim = Simulator()
    net = Network(sim)
    a = net.add_host(Host(sim, "a"))
    b = net.add_host(Host(sim, "b"))
    c = net.add_host(Host(sim, "c"))
    t1 = net.transfer(a, c, 500_000, lambda: None)
    t2 = net.transfer(b, c, 500_000, lambda: None)
    dur = (500_000 + net.link.frame_overhead) / net.link.bandwidth
    assert t2 - t1 >= dur * 0.99


def test_full_duplex_host_overlaps_tx_and_rx():
    sim = Simulator()
    net = Network(sim)
    a = net.add_host(Host(sim, "a", full_duplex=True))
    b = net.add_host(Host(sim, "b", full_duplex=True))
    t_ab = net.transfer(a, b, 1_000_000, lambda: None)
    t_ba = net.transfer(b, a, 1_000_000, lambda: None)
    # both directions complete in roughly one transfer time
    assert t_ba == pytest.approx(t_ab, rel=0.05)


def test_half_duplex_host_serializes_bulk_tx_and_rx():
    sim = Simulator()
    net = Network(sim)
    a = net.add_host(Host(sim, "a", full_duplex=False))
    b = net.add_host(Host(sim, "b", full_duplex=False))
    t_ab = net.transfer(a, b, 1_000_000, lambda: None, bulk=True)
    t_ba = net.transfer(b, a, 1_000_000, lambda: None, bulk=True)
    # the second direction waits for the first: ~2x
    assert t_ba > 1.8 * t_ab


def test_half_duplex_host_overlaps_non_bulk():
    """Only bulk pushes couple the two directions (the P4 eager path)."""
    sim = Simulator()
    net = Network(sim)
    a = net.add_host(Host(sim, "a", full_duplex=False))
    b = net.add_host(Host(sim, "b", full_duplex=False))
    t_ab = net.transfer(a, b, 1_000_000, lambda: None)
    t_ba = net.transfer(b, a, 1_000_000, lambda: None)
    assert t_ba == pytest.approx(t_ab, rel=0.05)


def test_half_duplex_small_bulk_frames_uncoupled():
    sim = Simulator()
    net = Network(sim)
    a = net.add_host(Host(sim, "a", full_duplex=False))
    b = net.add_host(Host(sim, "b", full_duplex=False))
    t_ab = net.transfer(a, b, 4096, lambda: None, bulk=True)
    t_ba = net.transfer(b, a, 4096, lambda: None, bulk=True)
    assert t_ba == pytest.approx(t_ab, rel=0.05)


def test_loopback_is_fast():
    sim, net, a, b = make_net()
    t = net.transfer(a, a, 1_000_000, lambda: None)
    assert t < 0.01  # memcpy speed, not wire speed


def test_transfer_from_crashed_host_raises():
    sim, net, a, b = make_net()
    a.crash()
    with pytest.raises(HostDown):
        net.transfer(a, b, 10, lambda: None)


def test_reliable_host_cannot_crash():
    sim = Simulator()
    h = Host(sim, "el", reliable=True)
    with pytest.raises(HostDown):
        h.crash()


def test_crash_kills_registered_processes():
    sim = Simulator()
    h = Host(sim, "n1")

    def prog():
        yield sim.timeout(100.0)

    p = sim.spawn(prog(), "app")
    h.register(p)
    sim.after(1.0, h.crash)
    sim.run()
    assert not p.alive


def test_register_on_crashed_host_raises():
    sim = Simulator()
    h = Host(sim, "n1")
    h.crash()

    def prog():
        yield sim.timeout(1.0)

    p = sim.spawn(prog(), "app", supervised=True)
    with pytest.raises(HostDown):
        h.register(p)


def test_restart_increments_incarnation_and_resets_nic():
    sim = Simulator()
    h = Host(sim, "n1")
    h.crash()
    assert h.failed
    h.restart()
    assert not h.failed
    assert h.incarnation == 1


def test_crash_callbacks_fire_once():
    sim = Simulator()
    h = Host(sim, "n1")
    fired = []
    h.on_crash.append(lambda host: fired.append(host.name))
    h.crash()
    h.crash()
    assert fired == ["n1"]


def test_compute_seconds_scales_with_cpu():
    sim = Simulator()
    slow = Host(sim, "slow", cpu_flops=1e8)
    fast = Host(sim, "fast", cpu_flops=1e9)
    assert slow.compute_seconds(1e8) == pytest.approx(1.0)
    assert fast.compute_seconds(1e8) == pytest.approx(0.1)


def test_network_accounting():
    sim, net, a, b = make_net()
    net.transfer(a, b, 100, lambda: None)
    net.transfer(a, b, 200, lambda: None)
    assert net.bytes_moved == 300
    assert net.segments_moved == 2


def test_sustained_bandwidth_close_to_link_rate():
    """A long pipelined train of segments approaches the configured rate."""
    sim, net, a, b = make_net()
    n, size = 100, 16384
    done = []
    for _ in range(n):
        t = net.transfer(a, b, size, lambda: None)
        done.append(t)
    total_bytes = n * size
    elapsed = done[-1]
    rate = total_bytes / elapsed
    assert rate == pytest.approx(net.link.bandwidth, rel=0.05)
