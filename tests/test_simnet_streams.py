"""Unit tests for flow-controlled streams."""

import pytest

from repro.simnet import (
    Disconnected,
    Host,
    Network,
    Simulator,
    Stream,
)


def make_pair(window=64 * 1024):
    sim = Simulator()
    net = Network(sim)
    a = net.add_host(Host(sim, "a"))
    b = net.add_host(Host(sim, "b"))
    stream = Stream(net, a, b, window=window)
    return sim, net, stream


def test_write_then_read_delivers_payload():
    sim, net, stream = make_pair()

    def writer():
        yield from stream.a.write(100, payload="hello")

    def reader():
        nbytes, payload = yield stream.b.read()
        return (nbytes, payload)

    sim.spawn(writer(), "w")
    p = sim.spawn(reader(), "r")
    assert sim.run_until(p.done) == (100, "hello")


def test_segments_delivered_in_order():
    sim, net, stream = make_pair()
    got = []

    def writer():
        for i in range(10):
            yield from stream.a.write(50, payload=i)

    def reader():
        for _ in range(10):
            _, payload = yield stream.b.read()
            got.append(payload)

    sim.spawn(writer(), "w")
    p = sim.spawn(reader(), "r")
    sim.run_until(p.done)
    assert got == list(range(10))


def test_window_blocks_writer_until_reader_drains():
    sim, net, stream = make_pair(window=1000)
    times = {}

    def writer():
        yield from stream.a.write(800, payload="first")
        yield from stream.a.write(800, payload="second")  # must wait for read
        times["second_written"] = sim.now

    def reader():
        yield sim.timeout(5.0)
        yield stream.b.read()
        times["first_read"] = sim.now
        yield stream.b.read()

    sim.spawn(writer(), "w")
    p = sim.spawn(reader(), "r")
    sim.run_until(p.done)
    assert times["second_written"] >= times["first_read"]


def test_write_nowait_respects_window():
    sim, net, stream = make_pair(window=1000)
    assert stream.a.write_nowait(900, payload=1) is True
    assert stream.a.write_nowait(900, payload=2) is False  # window full


def test_try_read_and_readable():
    sim, net, stream = make_pair()
    assert stream.b.try_read() == (False, 0, None)
    assert not stream.b.readable

    def writer():
        yield from stream.a.write(10, payload="x")

    p = sim.spawn(writer(), "w")
    sim.run_until(p.done)
    sim.run()
    assert stream.b.readable
    assert stream.b.try_read() == (True, 10, "x")


def test_read_releases_credit():
    sim, net, stream = make_pair(window=1000)

    def writer():
        for i in range(5):
            yield from stream.a.write(1000, payload=i)
        return sim.now

    def reader():
        for _ in range(5):
            yield stream.b.read()

    pw = sim.spawn(writer(), "w")
    sim.spawn(reader(), "r")
    sim.run_until(pw.done)  # would deadlock if credit never returned


def test_oversized_write_charged_at_window_cap():
    """A segment larger than the window is still writable (charged capped)."""
    sim, net, stream = make_pair(window=1000)

    def writer():
        yield from stream.a.write(5000, payload="big")

    def reader():
        nbytes, payload = yield stream.b.read()
        return nbytes

    sim.spawn(writer(), "w")
    p = sim.spawn(reader(), "r")
    assert sim.run_until(p.done) == 5000


def test_break_fails_pending_read():
    sim, net, stream = make_pair()

    def reader():
        yield stream.b.read()

    p = sim.spawn(reader(), "r", supervised=True)
    sim.after(1.0, lambda: stream.break_both("peer crash"))
    sim.run()
    assert isinstance(p.done.exception, Disconnected)


def test_break_fails_blocked_writer():
    sim, net, stream = make_pair(window=100)

    def writer():
        yield from stream.a.write(100, payload=1)
        yield from stream.a.write(100, payload=2)  # blocked: no reader

    p = sim.spawn(writer(), "w", supervised=True)
    sim.after(1.0, lambda: stream.break_both("peer crash"))
    sim.run()
    assert isinstance(p.done.exception, Disconnected)


def test_host_crash_breaks_attached_streams():
    sim, net, stream = make_pair()

    def reader():
        yield stream.b.read()

    p = sim.spawn(reader(), "r", supervised=True)
    sim.after(1.0, stream.a.host.crash)
    sim.run()
    assert isinstance(p.done.exception, Disconnected)
    assert stream.dead


def test_in_flight_segment_dropped_on_crash():
    """Atomicity: a segment in flight when the receiver dies is dropped."""
    sim, net, stream = make_pair()

    def writer():
        yield from stream.a.write(60_000, payload="doomed")

    sim.spawn(writer(), "w")
    # crash the receiver while the segment is on the wire
    sim.after(1e-6, stream.b.host.crash)
    sim.run()
    assert stream.b.rx_depth == 0


def test_write_after_break_raises():
    sim, net, stream = make_pair()
    stream.break_both("gone")

    def writer():
        yield from stream.a.write(10, payload="x")

    p = sim.spawn(writer(), "w", supervised=True)
    sim.run()
    assert isinstance(p.done.exception, Disconnected)


def test_end_for_lookup():
    sim, net, stream = make_pair()
    assert stream.end_for(stream.a.host) is stream.a
    assert stream.end_for(stream.b.host) is stream.b
    other = Host(sim, "z")
    with pytest.raises(ValueError):
        stream.end_for(other)


def test_byte_accounting():
    sim, net, stream = make_pair()

    def writer():
        yield from stream.a.write(123, payload=None)

    def reader():
        yield stream.b.read()

    sim.spawn(writer(), "w")
    p = sim.spawn(reader(), "r")
    sim.run_until(p.done)
    assert stream.a.bytes_written == 123
    assert stream.b.bytes_read == 123


def test_bidirectional_streams_independent():
    sim, net, stream = make_pair()

    def ping():
        yield from stream.a.write(10, payload="ping")
        _, payload = yield stream.a.read()
        return payload

    def pong():
        _, payload = yield stream.b.read()
        yield from stream.b.write(10, payload="pong")

    p = sim.spawn(ping(), "ping")
    sim.spawn(pong(), "pong")
    assert sim.run_until(p.done) == "pong"


# -- coalesced frames (write_frame) -------------------------------------------


def test_write_frame_delivers_one_record():
    """A frame within the window arrives as ONE segment: one reader
    wakeup carrying the record, no intermediate None segments."""
    sim, net, stream = make_pair(window=64 * 1024)

    def writer():
        yield from stream.a.write_frame(40_000, record="rec", mtu=1024)

    def reader():
        nbytes, payload = yield stream.b.read()
        return (nbytes, payload, stream.b.readable)

    sim.spawn(writer(), "w")
    p = sim.spawn(reader(), "r")
    assert sim.run_until(p.done) == (40_000, "rec", False)


def test_write_frame_times_like_segmented_writes():
    """Coalescing must not cheat the wire: a frame spanning N mtu-sized
    segments pays the same frame overhead and inter-segment gaps as N
    separate writes (only the per-call CPU batching differs)."""
    sim1, net1, stream1 = make_pair(window=64 * 1024)

    def framed():
        yield from stream1.a.write_frame(8_000, record="x", mtu=1000)

    def drain1():
        yield stream1.b.read()
        return sim1.now

    sim1.spawn(framed(), "w")
    p1 = sim1.spawn(drain1(), "r")
    t_framed = sim1.run_until(p1.done)

    sim2, net2, stream2 = make_pair(window=64 * 1024)

    def segmented():
        for i in range(8):
            yield from stream2.a.write(1000, payload=i)

    def drain2():
        for _ in range(8):
            yield stream2.b.read()
        return sim2.now

    sim2.spawn(segmented(), "w")
    p2 = sim2.spawn(drain2(), "r")
    t_segmented = sim2.run_until(p2.done)
    assert t_framed == pytest.approx(t_segmented)


def test_write_frame_larger_than_window_respects_flow_control():
    """An over-window frame falls back to window-respecting segments:
    the reader must drain mid-transfer (Figure 9), and the record rides
    the final segment."""
    sim, net, stream = make_pair(window=1000)
    got = []

    def writer():
        yield from stream.a.write_frame(3500, record="tail", mtu=1000)

    def reader():
        while True:
            nbytes, payload = yield stream.b.read()
            got.append((nbytes, payload))
            if payload is not None:
                return

    sim.spawn(writer(), "w")
    p = sim.spawn(reader(), "r")
    sim.run_until(p.done)
    assert got == [(1000, None), (1000, None), (1000, None), (500, "tail")]
    assert stream.a.bytes_written == 3500
    assert stream.b.bytes_read == 3500


def test_write_frame_over_window_counts_at_most_one_stall():
    """However many segments of an over-window frame block on credit,
    the call books a single window stall (it is one blocked write)."""
    sim, net, stream = make_pair(window=1000)

    def writer():
        yield from stream.a.write_frame(5000, record="r", mtu=1000)

    def reader():
        while True:
            _, payload = yield stream.b.read()
            if payload is not None:
                return

    sim.spawn(writer(), "w")
    p = sim.spawn(reader(), "r")
    sim.run_until(p.done)
    assert stream.a.stall_count == 1
    assert stream.a.stall_s > 0.0


# -- window-stall accounting --------------------------------------------------


def test_stall_counted_when_blocked_behind_queued_waiter():
    """FIFO blocking: a writer with enough raw tokens still queues
    behind an earlier waiter — that is a stall too (the old
    tokens-sufficient pre-check missed it)."""
    sim, net, stream = make_pair(window=1000)
    order = []

    def big_writer():
        yield from stream.a.write(900, payload="a1")
        yield from stream.a.write(900, payload="a2")  # blocks: 100 left
        order.append("big")

    def small_writer():
        # Runs after big_writer queued for credit.  100 tokens remain —
        # enough for this 50-byte segment — but FIFO order parks it
        # behind the blocked big write, so it must count a stall.
        yield sim.timeout(0.001)
        yield from stream.a.write(50, payload="b")
        order.append("small")

    def reader():
        yield sim.timeout(1.0)
        for _ in range(3):
            yield stream.b.read()

    sim.spawn(big_writer(), "w1")
    sim.spawn(small_writer(), "w2")
    p = sim.spawn(reader(), "r")
    sim.run_until(p.done)
    sim.run()
    assert order == ["big", "small"]
    assert stream.a.stall_count == 2  # both the big AND the queued small
    assert stream.a.stall_s > 0.0


def test_no_stall_counted_on_free_write():
    sim, net, stream = make_pair(window=1000)

    def writer():
        yield from stream.a.write(100, payload=None)

    def reader():
        yield stream.b.read()

    sim.spawn(writer(), "w")
    p = sim.spawn(reader(), "r")
    sim.run_until(p.done)
    assert stream.a.stall_count == 0
    assert stream.a.stall_s == 0.0


def test_write_nowait_refuses_behind_queued_waiter():
    """write_nowait must not jump the FIFO credit queue: with waiters
    parked, it reports full even when raw tokens would cover it."""
    sim, net, stream = make_pair(window=1000)

    def blocked_writer():
        yield from stream.a.write(900, payload=1)
        yield from stream.a.write(900, payload=2)  # parks on credit

    sim.spawn(blocked_writer(), "w")
    sim.run()
    assert stream.a.write_nowait(50, payload=3) is False
