"""Soak test: a long multi-kernel run under desktop-grid churn.

Exercises the whole stack at once — NAS verification kernels chained in
one program over sub-communicators, with checkpointing and Weibull churn
— and asserts end-to-end consistency against the calm run.
"""


from repro.ft.failure import ChurnFaults
from repro.runtime.mpirun import run_job
from repro.workloads import nas


def campaign(mpi):
    """Run CG then FT (whole world), then MG per half, then combine."""
    r1 = yield from nas.cg.program(mpi, klass="T")
    r2 = yield from nas.ft.program(mpi, klass="T")
    half = yield from mpi.split(color=mpi.rank % 2)
    r3 = yield from nas.mg.program(half, klass="T")
    yield from mpi.compute(seconds=0.05)
    combined = yield from mpi.allreduce(
        value=round(r1.checksum + r2.checksum + r3.checksum, 6), nbytes=8
    )
    return round(combined, 6)


def test_soak_campaign_under_churn():
    calm = run_job(campaign, 4, device="v2", limit=3600.0)
    churn = ChurnFaults(mean_lifetime=0.35, seed=17, max_faults=5,
                        check_interval=0.03)
    stormy = run_job(
        campaign, 4, device="v2",
        checkpointing=True, ckpt_interval=0.1,
        faults=churn, spares=2, limit=3600.0,
    )
    assert stormy.restarts == len(churn.injected) >= 2
    assert stormy.results == calm.results


def test_soak_campaign_cross_device():
    ref = run_job(campaign, 4, device="p4", limit=3600.0).results
    assert run_job(campaign, 4, device="v2", limit=3600.0).results == ref
