"""The replicated, content-addressed checkpoint store (repro.store).

Unit-level coverage of the three mechanisms the restart path stands on:
content-addressed chunking (dedup across sequences, incremental pushes),
quorum writes (durable at K of N, degraded replica sets tolerated up to
N-K failures), and manifest-reference garbage collection (a chunk lives
exactly as long as some surviving manifest names it).  The wire protocol
is typed; malformed records are rejected and logged, never misread as
payload.
"""

import pytest

from repro.core.clocks import ClockState
from repro.core.replay import CheckpointImage
from repro.ft.ckpt_server import CheckpointServer
from repro.mpi.datatypes import CTX_PT2PT, Envelope
from repro.runtime.cluster import Cluster
from repro.runtime.config import DEFAULT_TESTBED
from repro.runtime.fabric import Fabric
from repro.store import StoreClient, StoreReplica, assemble_image, chunk_image


def _image(rank=0, seq=1, footprint=200_000, regions=(), saved=None):
    return CheckpointImage(
        rank=rank, seq=seq, op_count=seq, clock=ClockState(),
        saved=list(saved or []), delivery_log=[], app_footprint=footprint,
        regions=tuple(regions),
    )


def _saved(dst, sclock, nbytes):
    return (dst, sclock,
            Envelope(src=9, dst=dst, tag=0, context=CTX_PT2PT,
                     nbytes=nbytes, sclock=sclock))


def _deploy(n, cfg=None, seed=0):
    """A cluster with ``n`` started replicas and a client-side CN host."""
    cluster = Cluster(cfg or DEFAULT_TESTBED, seed=seed)
    fabric = Fabric(cluster)
    replicas = []
    for i in range(n):
        host = cluster.add_aux(f"cs-host{i}")
        r = StoreReplica(cluster.sim, host, fabric, cluster.cfg,
                         name=f"cs:{i}", metrics=cluster.metrics)
        r.start()
        replicas.append(r)
    cn = cluster.add_cn("cn0")
    return cluster, fabric, replicas, cn


def _client(cluster, fabric, replicas, cn, rank=0, quorum=None):
    cfg = cluster.cfg
    if quorum is not None:
        cfg = cfg.with_(ckpt_replicas=quorum)
    return StoreClient(
        cluster.sim, cfg, fabric, cn, tuple(r.name for r in replicas),
        rank, metrics=cluster.metrics,
    )


# -- chunking and dedup ------------------------------------------------------


def test_chunk_dedup_across_sequences():
    """Consecutive checkpoints of an unchanged memory share every region
    chunk; only the per-sequence header differs."""
    cfg = DEFAULT_TESTBED
    a = _image(seq=1, footprint=cfg.ckpt_chunk_bytes * 3, regions=(0, 0, 0))
    b = _image(seq=2, footprint=cfg.ckpt_chunk_bytes * 3, regions=(0, 0, 0))
    ma, ca = chunk_image(a, cfg.ckpt_chunk_bytes)
    mb, cb = chunk_image(b, cfg.ckpt_chunk_bytes)
    shared = set(ma.digests) & set(mb.digests)
    assert len(shared) == 3  # the three untouched memory regions
    fresh = set(mb.digests) - set(ma.digests)
    assert fresh  # the header always changes
    assert all(cb[d].payload[0] == "hdr" or cb[d].payload == ("pad",)
               for d in fresh)


def test_chunk_dirty_region_invalidates_one_chunk():
    cfg = DEFAULT_TESTBED
    a = _image(seq=1, footprint=cfg.ckpt_chunk_bytes * 4,
               regions=(0, 0, 0, 0))
    b = _image(seq=2, footprint=cfg.ckpt_chunk_bytes * 4,
               regions=(0, 2, 0, 0))  # one region written since seq 1
    ma, _ = chunk_image(a, cfg.ckpt_chunk_bytes)
    mb, _ = chunk_image(b, cfg.ckpt_chunk_bytes)
    mem_a = [r.digest for r in ma.chunks[:4]]
    mem_b = [r.digest for r in mb.chunks[:4]]
    assert mem_a[0] == mem_b[0] and mem_a[2:] == mem_b[2:]
    assert mem_a[1] != mem_b[1]


def test_assemble_refuses_incomplete_chunk_set():
    cfg = DEFAULT_TESTBED
    manifest, chunks = chunk_image(_image(), cfg.ckpt_chunk_bytes)
    del chunks[manifest.digests[0]]
    with pytest.raises(KeyError):
        assemble_image(manifest, chunks)


def test_saved_payloads_roundtrip_with_oversized_entries():
    cfg = DEFAULT_TESTBED
    saved = [_saved(1, 3, 500), _saved(1, 4, cfg.ckpt_chunk_bytes * 2 + 17),
             _saved(2, 1, 900)]
    image = _image(footprint=10_000, saved=saved)
    manifest, chunks = chunk_image(image, cfg.ckpt_chunk_bytes)
    assert all(ref.nbytes <= cfg.ckpt_chunk_bytes for ref in manifest.chunks)
    back = assemble_image(manifest, chunks)
    assert back.saved == sorted(saved, key=lambda t: (t[0], t[1]))
    assert back.image_bytes == image.image_bytes


# -- quorum push -------------------------------------------------------------


def test_push_durable_at_quorum_with_one_replica_down():
    """K=2 of N=3: a push succeeds with one replica dead, and at least
    two replicas hold the complete manifest the moment it resolves."""
    cluster, fabric, replicas, cn = _deploy(3)
    replicas[2].stop()
    client = _client(cluster, fabric, replicas, cn, quorum=2)
    got = {}

    def run():
        manifest, chunks = chunk_image(_image(), cluster.cfg.ckpt_chunk_bytes)
        got["ok"] = yield from client.push(manifest, chunks, False)
        got["committed"] = sum(
            1 for r in replicas if r.manifests.get(0, {}).get(1)
        )

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["ok"] is True
    assert got["committed"] >= 2
    assert not replicas[2].manifests  # the dead replica never saw it
    assert cluster.metrics.total("store.push_bytes") > 0


def test_push_fails_when_quorum_unreachable():
    cluster, fabric, replicas, cn = _deploy(3)
    replicas[1].stop()
    replicas[2].stop()
    client = _client(cluster, fabric, replicas, cn, quorum=2)
    got = {}

    def run():
        manifest, chunks = chunk_image(_image(), cluster.cfg.ckpt_chunk_bytes)
        got["ok"] = yield from client.push(manifest, chunks, False)

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["ok"] is False
    assert client.last_push_why == "refused"
    # the lone live replica still committed; durability just wasn't met
    assert replicas[0].manifests.get(0, {}).get(1)


def test_incremental_push_sends_only_missing_chunks():
    cluster, fabric, replicas, cn = _deploy(1)
    cfg = cluster.cfg
    client = _client(cluster, fabric, replicas, cn)
    n_regions = 4
    footprint = cfg.ckpt_chunk_bytes * n_regions
    got = {}

    def run():
        m1, c1 = chunk_image(
            _image(seq=1, footprint=footprint, regions=(0,) * n_regions),
            cfg.ckpt_chunk_bytes,
        )
        yield from client.push(m1, c1, True)
        got["first"] = cluster.metrics.total("store.push_bytes")
        # one dirty region since seq 1: the incremental push moves that
        # region plus the header, nothing else
        m2, c2 = chunk_image(
            _image(seq=2, footprint=footprint, regions=(0, 1, 0, 0)),
            cfg.ckpt_chunk_bytes,
        )
        yield from client.push(m2, c2, True)
        got["second"] = cluster.metrics.total("store.push_bytes") - got["first"]

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["first"] >= footprint
    assert got["second"] < got["first"] / 2
    assert cluster.metrics.total("store.dedup_bytes") >= footprint * 0.7
    assert replicas[0].latest(0).seq == 2


# -- fetch and failover ------------------------------------------------------


def test_fetch_fails_over_when_a_replica_dies():
    """Both replicas hold the image; the one serving the fetch dies.
    The client retries against the survivor and completes the restart."""
    cluster, fabric, replicas, cn = _deploy(2)
    cfg = cluster.cfg
    image = _image(footprint=5_000_000)  # big enough to die mid-stream
    manifest, chunks = chunk_image(image, cfg.ckpt_chunk_bytes)
    for r in replicas:
        r.chunks.update(chunks)
        r.manifests.setdefault(0, {})[manifest.seq] = manifest
    client = _client(cluster, fabric, replicas, cn)
    got = {}

    def run():
        got["image"] = yield from client.fetch()

    cluster.sim.spawn(run())
    cluster.sim.after(0.01, replicas[0].stop)
    cluster.sim.run()
    assert got["image"] is not None
    assert got["image"].seq == manifest.seq
    assert got["image"].image_bytes == image.image_bytes
    assert cluster.metrics.total("store.failover") >= 1


def test_zero_copy_push_and_fetch_share_backing_buffer():
    """The flat framing path hands chunk *references* all the way from
    the pushing daemon through the replica store to the fetching
    restart: every stored chunk still views the original image's one
    backing buffer, and nothing along the way materialized a copy."""
    cluster, fabric, replicas, cn = _deploy(2)
    cfg = cluster.cfg
    image = _image(footprint=cfg.ckpt_chunk_bytes * 3, regions=(0, 0, 0))
    manifest, chunks = chunk_image(image, cfg.ckpt_chunk_bytes)
    buf = next(iter(chunks.values())).view.buf
    assert all(c.view is not None and c.view.buf is buf
               for c in chunks.values())
    # slices tile the serialized image: offsets run contiguously
    offsets = sorted((c.view.offset, c.view.nbytes) for c in chunks.values())
    end = 0
    for offset, nbytes in offsets:
        assert offset == end
        end += nbytes
    assert end == image.image_bytes
    client = _client(cluster, fabric, replicas, cn, quorum=2)
    got = {}

    def run():
        got["ok"] = yield from client.push(manifest, chunks, False)
        got["image"] = yield from client.fetch()

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["ok"] is True and got["image"] is not None
    for r in replicas:
        for ref in manifest.chunks:
            assert r.chunks[ref.digest].view.buf is buf  # no re-buffering
    assert buf.copies == 0  # push → replica → fetch: zero materializations


def test_fetch_returns_none_when_no_replica_has_an_image():
    cluster, fabric, replicas, cn = _deploy(2)
    client = _client(cluster, fabric, replicas, cn)
    got = {}

    def run():
        got["image"] = yield from client.fetch()

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["image"] is None
    assert cluster.metrics.total("store.failover") == 0


# -- garbage collection ------------------------------------------------------


def test_gc_frees_only_unreferenced_chunks():
    cluster, fabric, replicas, cn = _deploy(1)
    cfg = cluster.cfg
    replica = replicas[0]
    n = 3
    footprint = cfg.ckpt_chunk_bytes * n
    m1, c1 = chunk_image(_image(seq=1, footprint=footprint,
                                regions=(0, 0, 0)), cfg.ckpt_chunk_bytes)
    m2, c2 = chunk_image(_image(seq=2, footprint=footprint,
                                regions=(0, 7, 0)), cfg.ckpt_chunk_bytes)
    for m, c in ((m1, c1), (m2, c2)):
        replica.chunks.update(c)
        replica.manifests.setdefault(0, {})[m.seq] = m
    replica._collect({0: 2})
    assert list(replica.manifests[0]) == [2]
    # every chunk of the surviving manifest is intact...
    assert all(d in replica.chunks for d in m2.digests)
    # ...and seq 1's now-unreferenced chunks (dirty region + header) are gone
    dead = set(m1.digests) - set(m2.digests)
    assert dead and all(d not in replica.chunks for d in dead)
    assert cluster.metrics.total("store.gc_reclaimed_bytes") > 0
    # the shared region chunks were NOT reclaimed
    shared = set(m1.digests) & set(m2.digests)
    assert shared and all(d in replica.chunks for d in shared)


def test_commit_is_refused_when_chunks_are_missing():
    """A COMMIT naming chunks the replica does not hold is INCOMPLETE:
    a half-pushed image can never become fetchable."""
    cluster, fabric, replicas, cn = _deploy(1)
    cfg = cluster.cfg
    got = {}

    def run():
        end = fabric.connect(cn, "cs:0")
        manifest, chunks = chunk_image(_image(), cfg.ckpt_chunk_bytes)
        yield from end.write(manifest.wire_bytes, ("COMMIT", manifest))
        _, reply = yield end.read()
        got["reply"] = reply

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["reply"][0] == "INCOMPLETE"
    assert set(got["reply"][1])  # the holes are named
    assert not replicas[0].manifests


# -- wire-protocol framing ---------------------------------------------------


def test_malformed_records_are_rejected_and_logged():
    """The satellite bugfix: anything that is not a typed tuple (or a
    bare in-flight segment) is a protocol error — logged and skipped,
    never silently treated as a chunk in flight."""
    cluster, fabric, replicas, cn = _deploy(1)
    got = {}

    def run():
        end = fabric.connect(cn, "cs:0")
        yield from end.write(16, "banana")          # not a tuple
        yield from end.write(16, (42, "x"))         # untagged tuple
        yield from end.write(16, ())                # empty tuple
        yield from end.write(16, ("BOGUS", 1))      # unknown tag
        yield from end.write(16, ("HAVE", 1))       # malformed HAVE
        yield from end.write(16, ("CHUNK", "junk"))  # not a Chunk
        yield from end.write(16, None)              # a legal segment filler
        yield from end.write(16, ("HEAD", 0))       # the loop still serves
        _, reply = yield end.read()
        got["head"] = reply

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert got["head"] == ("LATEST", 0)
    assert cluster.metrics.total("store.protocol_errors") == 6
    assert not replicas[0].chunks  # nothing malformed was stored


def test_checkpoint_server_is_a_store_replica():
    """The paper-facing CheckpointServer is the store replica, unchanged
    in constructor shape — existing deployments keep working."""
    assert issubclass(CheckpointServer, StoreReplica)
    cluster = Cluster(DEFAULT_TESTBED, seed=0)
    fabric = Fabric(cluster)
    host = cluster.add_aux("svc")
    cs = CheckpointServer(cluster.sim, host, fabric, cluster.cfg)
    assert cs.name == "cs:0"
    assert cs.images == {}
