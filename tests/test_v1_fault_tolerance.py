"""MPICH-V1's own fault tolerance: uncoordinated restart via the CM log.

Section 3.2 of the paper: "After a crash, a re-executing process
retrieves all lost receptions in the correct order by requesting them to
its Channel Memory. A main property of MPICH-V1 is the uncoordinated
restart: a process re-execution is independent of the other processes of
the system."
"""


from repro.ft.failure import ExplicitFaults, RandomFaults
from repro.runtime.mpirun import run_job


def ring(mpi, rounds=8, work=0.03):
    nxt, prv = (mpi.rank + 1) % mpi.size, (mpi.rank - 1) % mpi.size
    token = float(mpi.rank)
    for r in range(rounds):
        sreq = yield from mpi.isend(nxt, nbytes=600, tag=r, data=token)
        rreq = yield from mpi.irecv(source=prv, tag=r)
        yield from mpi.waitall([sreq, rreq])
        token = 0.5 * token + 0.5 * rreq.message.data + 1.0
        yield from mpi.compute(seconds=work)
    total = yield from mpi.allreduce(value=round(token, 9), nbytes=8)
    return round(total, 9)


def test_v1_single_fault_identical_result():
    clean = run_job(ring, 4, device="v1")
    res = run_job(ring, 4, device="v1", faults=ExplicitFaults([(0.05, 2)]),
                  limit=600.0)
    assert res.restarts == 1
    assert res.results == clean.results


def test_v1_two_concurrent_faults():
    clean = run_job(ring, 4, device="v1")
    res = run_job(
        ring, 4, device="v1", faults=ExplicitFaults([(0.05, 1), (0.05, 3)]),
        limit=600.0,
    )
    assert res.restarts == 2
    assert res.results == clean.results


def test_v1_repeated_faults_same_rank():
    clean = run_job(ring, 3, device="v1", params={"rounds": 10, "work": 0.2})
    res = run_job(
        ring, 3, device="v1", params={"rounds": 10, "work": 0.2},
        faults=ExplicitFaults([(0.1, 1), (2.2, 1)]), limit=600.0,
    )
    assert res.restarts == 2
    assert res.results == clean.results


def test_v1_random_faults():
    clean = run_job(ring, 4, device="v1", params={"rounds": 10, "work": 0.15})
    res = run_job(
        ring, 4, device="v1", params={"rounds": 10, "work": 0.15},
        faults=RandomFaults(interval=0.6, count=3, seed=9), limit=600.0,
    )
    assert res.restarts >= 1
    assert res.results == clean.results


def test_v1_restart_is_uncoordinated():
    """Only the crashed rank re-executes: others never roll back (their
    device incarnation stays 0)."""
    res = run_job(
        ring, 4, device="v1", faults=ExplicitFaults([(0.06, 2)]), limit=600.0
    )
    # re-run bookkeeping is visible through message re-service at the CM
    assert res.restarts == 1
    cms = res.extras["channel_memories"]
    # the restarted rank's stream was replayed: serves > stores for it
    total_serves = sum(cm.serves for cm in cms)
    total_stores = sum(cm.stores for cm in cms)
    assert total_serves > total_stores  # replayed deliveries re-served


def test_v1_cm_dedups_reexecuted_sends():
    res = run_job(
        ring, 4, device="v1", faults=ExplicitFaults([(0.05, 1)]), limit=600.0
    )
    cms = res.extras["channel_memories"]
    # every log entry is unique per (src, sclock)
    for cm in cms:
        for dst, msgs in cm.log.items():
            ids = [m.env.msgid for m in msgs]
            assert len(set(ids)) == len(ids)


def test_v1_fault_with_collectives_and_any_source():
    def prog(mpi):
        if mpi.rank == 0:
            got = []
            for _ in range(mpi.size - 1):
                msg = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=3)
                got.append(msg.data)
            total = yield from mpi.allreduce(value=sum(got), nbytes=8)
            return round(total, 9)
        yield from mpi.compute(seconds=0.01 * mpi.rank)
        yield from mpi.send(0, nbytes=64, tag=3, data=float(mpi.rank))
        total = yield from mpi.allreduce(value=0.0, nbytes=8)
        return round(total, 9)

    clean = run_job(prog, 4, device="v1")
    res = run_job(prog, 4, device="v1", faults=ExplicitFaults([(0.005, 0)]),
                  limit=600.0)
    assert res.restarts == 1
    assert res.results == clean.results
