"""Integration tests: the MPICH-V1 Channel-Memory baseline."""

import pytest

from repro.runtime.mpirun import run_job


def test_v1_ping():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=100, tag=1, data="ping")
            msg = yield from mpi.recv(source=1, tag=2)
            return msg.data
        msg = yield from mpi.recv(source=0, tag=1)
        yield from mpi.send(0, nbytes=100, tag=2, data=msg.data + "/pong")
        return None

    res = run_job(prog, 2, device="v1")
    assert res.results[0] == "ping/pong"


def test_v1_all_messages_stored_on_cm():
    def prog(mpi):
        if mpi.rank == 0:
            for i in range(5):
                yield from mpi.send(1, nbytes=500, tag=i)
        else:
            for i in range(5):
                yield from mpi.recv(source=0, tag=i)
        return None

    res = run_job(prog, 2, device="v1")
    cms = res.extras["channel_memories"]
    stored = sum(cm.stores for cm in cms)
    assert stored >= 5  # every payload transits and stays on a CM


def test_v1_cm_grouping():
    def prog(mpi):
        yield from mpi.barrier()
        return None

    res = run_job(prog, 8, device="v1", cns_per_cm=4)
    assert len(res.extras["channel_memories"]) == 2


def test_v1_collectives():
    def prog(mpi):
        total = yield from mpi.allreduce(value=mpi.rank + 1, nbytes=8)
        out = yield from mpi.allgather(value=mpi.rank, nbytes=8)
        return (total, out)

    res = run_job(prog, 4, device="v1")
    for total, out in res.results:
        assert total == 10
        assert out == [0, 1, 2, 3]


def test_v1_large_message_ships_eagerly():
    """No rendezvous through the CM: big payloads still arrive correctly."""

    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=600_000, tag=1, data="bulk")
            return None
        msg = yield from mpi.recv(source=0, tag=1)
        return (msg.nbytes, msg.data)

    res = run_job(prog, 2, device="v1")
    assert res.results[1] == (600_000, "bulk")


def test_v1_message_order_preserved():
    def prog(mpi):
        if mpi.rank == 0:
            for i in range(10):
                yield from mpi.send(1, nbytes=64, tag=0, data=i)
            return None
        out = []
        for _ in range(10):
            msg = yield from mpi.recv(source=0, tag=0)
            out.append(msg.data)
        return out

    res = run_job(prog, 2, device="v1")
    assert res.results[1] == list(range(10))


def test_v1_bandwidth_about_half_of_p4():
    def pingpong(mpi, nbytes=1024 * 1024):
        peer = 1 - mpi.rank
        t0 = mpi.sim.now
        for _ in range(3):
            if mpi.rank == 0:
                yield from mpi.send(peer, nbytes=nbytes)
                yield from mpi.recv(source=peer)
            else:
                yield from mpi.recv(source=peer)
                yield from mpi.send(peer, nbytes=nbytes)
        return nbytes * 6 / (mpi.sim.now - t0)

    bw_p4 = run_job(pingpong, 2, device="p4").results[0]
    bw_v1 = run_job(pingpong, 2, device="v1").results[0]
    # the paper: the Channel Memory divides the bandwidth by a factor of 2
    assert bw_v1 == pytest.approx(bw_p4 / 2, rel=0.2)


def test_v1_latency_between_p4_and_v2():
    def pingpong(mpi):
        peer = 1 - mpi.rank
        t0 = mpi.sim.now
        for _ in range(10):
            if mpi.rank == 0:
                yield from mpi.send(peer, nbytes=0)
                yield from mpi.recv(source=peer)
            else:
                yield from mpi.recv(source=peer)
                yield from mpi.send(peer, nbytes=0)
        return (mpi.sim.now - t0) / 20

    lat_p4 = run_job(pingpong, 2, device="p4").results[0]
    lat_v1 = run_job(pingpong, 2, device="v1").results[0]
    lat_v2 = run_job(pingpong, 2, device="v2").results[0]
    assert lat_p4 < lat_v1 < lat_v2
