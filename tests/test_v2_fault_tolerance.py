"""Fault-tolerance tests: crashes, restarts, replay, checkpoints.

The paper's correctness property (Theorems 1-2): after any number of
faults, the execution is equivalent to a fault-free execution.  Every
test here asserts *numerically identical results* to the fault-free run.
"""


from repro.ft.failure import ExplicitFaults, RandomFaults
from repro.runtime.mpirun import run_job


def ring_prog(mpi, rounds=8, nbytes=2000, work=0.02):
    """A token ring: each rank adds its rank to the token every round."""
    nxt = (mpi.rank + 1) % mpi.size
    prv = (mpi.rank - 1) % mpi.size
    token = [0]
    for _ in range(rounds):
        if mpi.rank == 0:
            yield from mpi.send(nxt, nbytes=nbytes, tag=0, data=list(token))
            msg = yield from mpi.recv(source=prv, tag=0)
            token = [msg.data[0] + 1] + msg.data[1:]
        else:
            msg = yield from mpi.recv(source=prv, tag=0)
            token = msg.data + [mpi.rank]
            yield from mpi.send(nxt, nbytes=nbytes, tag=0, data=token)
        yield from mpi.compute(seconds=work)
    return token


def stencil_prog(mpi, iters=6):
    """Nearest-neighbour exchange + allreduce: a mini 1-D stencil."""
    left = (mpi.rank - 1) % mpi.size
    right = (mpi.rank + 1) % mpi.size
    value = float(mpi.rank + 1)
    for it in range(iters):
        sreqs = []
        r = yield from mpi.isend(right, nbytes=800, tag=10 + it, data=value)
        sreqs.append(r)
        r = yield from mpi.isend(left, nbytes=800, tag=20 + it, data=value)
        sreqs.append(r)
        rr = yield from mpi.irecv(source=left, tag=10 + it)
        rl = yield from mpi.irecv(source=right, tag=20 + it)
        yield from mpi.waitall(sreqs + [rr, rl])
        value = 0.5 * value + 0.25 * (rr.message.data + rl.message.data)
        yield from mpi.compute(seconds=0.01)
        total = yield from mpi.allreduce(value=value, nbytes=8)
        value += 1e-3 * total
    return round(value, 9)


def baseline(prog, n, **params):
    return run_job(prog, n, device="v2", params=params).results


def test_single_fault_restart_from_scratch():
    expect = baseline(ring_prog, 4)
    res = run_job(
        ring_prog,
        4,
        device="v2",
        faults=ExplicitFaults([(0.1, 2)]),
    )
    assert res.restarts == 1
    assert res.results == expect


def test_fault_on_rank_zero():
    expect = baseline(ring_prog, 4)
    res = run_job(ring_prog, 4, device="v2", faults=ExplicitFaults([(0.15, 0)]))
    assert res.restarts == 1
    assert res.results == expect


def test_two_concurrent_faults():
    expect = baseline(ring_prog, 5)
    res = run_job(
        ring_prog,
        5,
        device="v2",
        faults=ExplicitFaults([(0.1, 1), (0.1, 3)]),
    )
    assert res.restarts == 2
    assert res.results == expect


def test_cascading_fault_during_reexecution():
    expect = baseline(ring_prog, 4)
    # second fault lands while rank 1 is still replaying (restart takes
    # ~1.25 s of detect+spawn delay, so 1.5 s is mid-recovery)
    res = run_job(
        ring_prog,
        4,
        device="v2",
        faults=ExplicitFaults([(0.1, 1), (1.5, 2)]),
    )
    assert res.restarts == 2
    assert res.results == expect


def test_repeated_faults_same_rank():
    expect = baseline(ring_prog, 3, rounds=10, work=0.3)
    res = run_job(
        ring_prog,
        3,
        device="v2",
        params={"rounds": 10, "work": 0.3},
        faults=ExplicitFaults([(0.1, 1), (2.0, 1), (4.0, 1)]),
    )
    assert res.restarts == 3
    assert res.results == expect


def test_fault_with_nonblocking_pattern():
    expect = baseline(stencil_prog, 4)
    res = run_job(
        stencil_prog,
        4,
        device="v2",
        faults=ExplicitFaults([(0.05, 2)]),
    )
    assert res.restarts == 1
    assert res.results == expect


def test_random_faults_many():
    expect = baseline(ring_prog, 4, rounds=10, work=0.25)
    res = run_job(
        ring_prog,
        4,
        device="v2",
        params={"rounds": 10, "work": 0.25},
        faults=RandomFaults(interval=0.8, count=4, seed=7),
        limit=600.0,
    )
    assert res.restarts >= 3  # some faults may land after completion
    assert res.results == expect


def test_restart_on_spare_node():
    expect = baseline(ring_prog, 4)
    res = run_job(
        ring_prog,
        4,
        device="v2",
        spares=2,
        faults=ExplicitFaults([(0.1, 1)]),
    )
    assert res.results == expect
    disp = res.extras["dispatcher"]
    assert disp.states[1].host.name == "spare0"


def test_faulty_run_takes_longer_than_clean():
    clean = run_job(ring_prog, 4, device="v2")
    faulty = run_job(ring_prog, 4, device="v2", faults=ExplicitFaults([(0.1, 2)]))
    assert faulty.elapsed > clean.elapsed


def test_checkpoint_roundtrip_no_faults():
    expect = baseline(ring_prog, 4, rounds=10, work=0.2)
    res = run_job(
        ring_prog,
        4,
        device="v2",
        params={"rounds": 10, "work": 0.2},
        checkpointing=True,
        ckpt_interval=0.2,
    )
    assert res.results == expect
    assert res.checkpoints > 0


def test_restart_from_checkpoint_image():
    expect = baseline(ring_prog, 4, rounds=12, work=0.2)
    res = run_job(
        ring_prog,
        4,
        device="v2",
        params={"rounds": 12, "work": 0.2},
        checkpointing=True,
        ckpt_interval=0.1,
        faults=ExplicitFaults([(1.5, 1)]),
    )
    assert res.results == expect
    assert res.restarts == 1
    assert res.checkpoints > 0
    # the restarted rank actually used an image: its daemon restored clock>0
    disp = res.extras["dispatcher"]
    assert disp.states[1].daemon.restart_base_recv > 0


def test_checkpoint_with_continuous_scheduling_and_faults():
    expect = baseline(ring_prog, 4, rounds=12, work=0.2)
    res = run_job(
        ring_prog,
        4,
        device="v2",
        params={"rounds": 12, "work": 0.2},
        checkpointing=True,
        ckpt_policy="random",
        ckpt_continuous=True,
        faults=RandomFaults(interval=1.2, count=3, seed=3),
        limit=600.0,
    )
    assert res.results == expect


def test_garbage_collection_after_checkpoint():
    res = run_job(
        ring_prog,
        4,
        device="v2",
        params={"rounds": 14, "work": 0.15},
        checkpointing=True,
        ckpt_interval=0.1,
    )
    assert res.checkpoints > 0
    el = res.extras["event_loggers"][0]
    disp = res.extras["dispatcher"]
    # some sender logs were garbage-collected
    freed = sum(
        disp.states[r].daemon.saved.gc_freed_bytes for r in range(4)
    )
    assert freed > 0


def test_event_logger_not_replayed_on_restart():
    """Replayed deliveries must not be re-logged (no duplicate events)."""
    clean = run_job(ring_prog, 3, device="v2")
    el_clean = clean.extras["event_loggers"][0]
    clean_counts = {r: len(el_clean.records_for(r)) for r in range(3)}

    faulty = run_job(ring_prog, 3, device="v2", faults=ExplicitFaults([(0.1, 1)]))
    el_faulty = faulty.extras["event_loggers"][0]
    for r in range(3):
        assert len(el_faulty.records_for(r)) == clean_counts[r]


def test_crash_between_rts_and_data():
    """A sender dying after its rendezvous RTS but before the DATA must
    still deliver the message after restart (the re-executed RTS is not a
    duplicate of a delivered payload and must pass the discard filter)."""

    def prog(mpi, iters=4):
        peer = 1 - mpi.rank
        total = 0.0
        for i in range(iters):
            # 400 KB: always above the eager threshold -> rendezvous
            sreq = yield from mpi.isend(peer, nbytes=400_000, tag=i, data=float(i))
            rreq = yield from mpi.irecv(source=peer, tag=i)
            yield from mpi.waitall([sreq, rreq])
            total += rreq.message.data
            yield from mpi.compute(seconds=0.05)
        return total

    expect = run_job(prog, 2, device="v2").results
    # kill the sender while rendezvous handshakes are in flight
    res = run_job(
        prog, 2, device="v2", faults=ExplicitFaults([(0.051, 0)]), limit=600.0
    )
    assert res.restarts == 1
    assert res.results == expect


def test_crash_mid_rendezvous_with_checkpoints():
    def prog(mpi, iters=6):
        peer = 1 - mpi.rank
        total = 0.0
        for i in range(iters):
            sreq = yield from mpi.isend(peer, nbytes=300_000, tag=i, data=float(i))
            rreq = yield from mpi.irecv(source=peer, tag=i)
            yield from mpi.waitall([sreq, rreq])
            total += rreq.message.data
            yield from mpi.compute(seconds=0.08)
        return total

    expect = run_job(prog, 2, device="v2").results
    res = run_job(
        prog, 2, device="v2",
        checkpointing=True, ckpt_interval=0.1, ckpt_continuous=True,
        ckpt_policy="random",
        faults=ExplicitFaults([(0.13, 1), (1.6, 0)]), limit=600.0,
    )
    assert res.restarts == 2
    assert res.results == expect


def test_crash_during_image_push_keeps_previous_image():
    """A node dying mid-checkpoint-push must not corrupt the server: the
    partial image is discarded and the previous one serves the restart."""
    res = run_job(
        ring_prog, 4, device="v2", params={"rounds": 14, "work": 0.2},
        checkpointing=True, ckpt_continuous=True, ckpt_policy="round_robin",
        # kill while some image transfer is almost certainly in flight
        faults=ExplicitFaults([(0.45, 0), (1.1, 2)]),
        limit=600.0,
    )
    expect = run_job(ring_prog, 4, device="v2",
                     params={"rounds": 14, "work": 0.2}).results
    assert res.results == expect
    cs = res.extras["checkpoint_server"]
    # stored images are internally consistent (sequence monotone per rank)
    for rank, img in cs.images.items():
        assert img.rank == rank
        assert img.op_count > 0


def test_restored_image_content_is_consistent():
    res = run_job(
        ring_prog, 3, device="v2", params={"rounds": 12, "work": 0.2},
        checkpointing=True, ckpt_interval=0.15,
        faults=ExplicitFaults([(1.4, 1)]), limit=600.0,
    )
    disp = res.extras["dispatcher"]
    d = disp.states[1].daemon
    if d.restart_base_recv > 0:  # restored from an image
        # the restored SAVED holds exactly the pre-checkpoint sends
        assert all(
            m.sclock <= d.clock.send_seq for m in d.saved
        )
        # and the delivery log extends past the image boundary
        assert len(d.delivery_log) >= d.restart_base_recv
