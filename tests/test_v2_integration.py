"""Integration tests: MPICH-V2 fault-free runs."""

import numpy as np
import pytest

from repro.runtime.mpirun import run_job


def test_v2_two_rank_ping():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=100, tag=1, data="ping")
            msg = yield from mpi.recv(source=1, tag=2)
            return msg.data
        msg = yield from mpi.recv(source=0, tag=1)
        yield from mpi.send(0, nbytes=100, tag=2, data=msg.data + "/pong")
        return "done"

    res = run_job(prog, 2, device="v2")
    assert res.results[0] == "ping/pong"
    assert res.restarts == 0


def test_v2_token_ring():
    def prog(mpi):
        nxt = (mpi.rank + 1) % mpi.size
        prv = (mpi.rank - 1) % mpi.size
        if mpi.rank == 0:
            yield from mpi.send(nxt, nbytes=8, tag=0, data=[0])
            msg = yield from mpi.recv(source=prv, tag=0)
            return msg.data
        msg = yield from mpi.recv(source=prv, tag=0)
        yield from mpi.send(nxt, nbytes=8, tag=0, data=msg.data + [mpi.rank])
        return None

    res = run_job(prog, 5, device="v2")
    assert res.results[0] == [0, 1, 2, 3, 4]


def test_v2_collectives():
    def prog(mpi):
        total = yield from mpi.allreduce(value=mpi.rank + 1, nbytes=8)
        gathered = yield from mpi.gather(root=0, value=mpi.rank, nbytes=8)
        bc = yield from mpi.bcast(root=0, nbytes=64, data="hello" if mpi.rank == 0 else None)
        return (total, gathered, bc)

    res = run_job(prog, 4, device="v2")
    for r in range(4):
        total, gathered, bc = res.results[r]
        assert total == 10
        assert bc == "hello"
    assert res.results[0][1] == [0, 1, 2, 3]


def test_v2_rendezvous_large_message():
    def prog(mpi):
        data = np.arange(64 * 1024, dtype=np.float64)  # 512 KB
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=int(data.nbytes), tag=9, data=data)
            return None
        msg = yield from mpi.recv(source=0, tag=9)
        return float(np.sum(msg.data))

    res = run_job(prog, 2, device="v2")
    assert res.results[1] == pytest.approx(float(np.sum(np.arange(64 * 1024))))


def test_v2_events_logged_per_delivery():
    def prog(mpi):
        peer = 1 - mpi.rank
        for i in range(5):
            if mpi.rank == 0:
                yield from mpi.send(peer, nbytes=64, tag=i)
                yield from mpi.recv(source=peer, tag=i)
            else:
                yield from mpi.recv(source=peer, tag=i)
                yield from mpi.send(peer, nbytes=64, tag=i)
        return None

    res = run_job(prog, 2, device="v2")
    el = res.extras["event_loggers"][0]
    # each rank delivered 5 application messages (plus finalize barrier)
    assert len(el.records_for(0)) >= 5
    assert len(el.records_for(1)) >= 5


def test_v2_latency_higher_than_p4():
    def pingpong(mpi):
        peer = 1 - mpi.rank
        t0 = mpi.sim.now
        for _ in range(10):
            if mpi.rank == 0:
                yield from mpi.send(peer, nbytes=0)
                yield from mpi.recv(source=peer)
            else:
                yield from mpi.recv(source=peer)
                yield from mpi.send(peer, nbytes=0)
        return (mpi.sim.now - t0) / 20

    lat_p4 = run_job(pingpong, 2, device="p4").results[0]
    lat_v2 = run_job(pingpong, 2, device="v2").results[0]
    # the paper: 77 us vs 237 us — a factor of ~3
    assert lat_v2 > 2.0 * lat_p4
    assert lat_v2 < 6.0 * lat_p4


def test_v2_bandwidth_close_to_p4():
    def pingpong(mpi, nbytes=2 * 1024 * 1024):
        peer = 1 - mpi.rank
        t0 = mpi.sim.now
        for _ in range(3):
            if mpi.rank == 0:
                yield from mpi.send(peer, nbytes=nbytes)
                yield from mpi.recv(source=peer)
            else:
                yield from mpi.recv(source=peer)
                yield from mpi.send(peer, nbytes=nbytes)
        return nbytes * 6 / (mpi.sim.now - t0)

    bw_p4 = run_job(pingpong, 2, device="p4").results[0]
    bw_v2 = run_job(pingpong, 2, device="v2").results[0]
    # the paper: 10.7 vs 11.3 MB/s (~95%)
    assert bw_v2 > 0.85 * bw_p4
    assert bw_v2 < bw_p4


def test_v2_sender_log_retains_payloads():
    def prog(mpi):
        if mpi.rank == 0:
            for i in range(4):
                yield from mpi.send(1, nbytes=1000, tag=i)
        else:
            for i in range(4):
                yield from mpi.recv(source=0, tag=i)
        return None

    res = run_job(prog, 2, device="v2")
    disp = res.extras["dispatcher"]
    saved = disp.states[0].daemon.saved
    assert len(saved.messages_for(1)) >= 4


def test_v2_deterministic():
    def prog(mpi):
        out = yield from mpi.allreduce(value=mpi.rank, nbytes=8)
        yield from mpi.compute(seconds=0.01)
        return out

    r1 = run_job(prog, 4, device="v2")
    r2 = run_job(prog, 4, device="v2")
    assert r1.elapsed == r2.elapsed
    assert r1.results == r2.results
