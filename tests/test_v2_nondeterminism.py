"""Nondeterministic receptions and probes under faults.

The events MPICH-V2 must log are exactly the nondeterministic ones:
ANY_SOURCE matching order and probe outcomes ("the number of probes made
since the last reception influences the next reception, so the receiver
counts this number... in order to replay exactly the same execution").
These tests drive those paths through crashes and assert the replayed
execution reaches the same results.
"""


from repro.ft.failure import ExplicitFaults
from repro.runtime.mpirun import run_job


def master_worker(mpi, chunks=10, work=0.03):
    """Rank 0 hands out chunks with ANY_SOURCE receives."""
    if mpi.rank == 0:
        handed, done, order = 0, 0, []
        active = mpi.size - 1
        while active:
            msg = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=1)
            worker, result = msg.data
            if result is not None:
                order.append((worker, result))
                done += 1
            if handed < chunks:
                yield from mpi.send(worker, nbytes=32, tag=2, data=handed)
                handed += 1
            else:
                yield from mpi.send(worker, nbytes=16, tag=2, data=None)
                active -= 1
        # the *set* of results is deterministic; the arrival order is the
        # nondeterministic event stream the protocol must replay
        return (done, round(sum(r for _, r in order), 9))
    yield from mpi.send(0, nbytes=32, tag=1, data=(mpi.rank, None))
    while True:
        task = yield from mpi.recv(source=0, tag=2)
        if task.data is None:
            return None
        yield from mpi.compute(seconds=work * (1 + 0.3 * mpi.rank))
        yield from mpi.send(
            0, nbytes=32, tag=1, data=(mpi.rank, 1.0 / (1 + task.data))
        )


def probing_consumer(mpi, items=8):
    """Rank 1 polls with iprobe between compute slices (probe counting)."""
    if mpi.rank == 0:
        for i in range(items):
            yield from mpi.compute(seconds=0.01)
            yield from mpi.send(1, nbytes=64, tag=7, data=float(i))
        return None
    got, polls = [], 0
    while len(got) < items:
        found = yield from mpi.iprobe(source=0, tag=7)
        if found:
            msg = yield from mpi.recv(source=0, tag=7)
            got.append(msg.data)
        else:
            polls += 1
            yield from mpi.compute(seconds=0.002)
    return (round(sum(got), 9), polls > 0)


def test_any_source_results_survive_worker_crash():
    clean = run_job(master_worker, 4, device="v2")
    res = run_job(
        master_worker, 4, device="v2", faults=ExplicitFaults([(0.05, 2)]),
        limit=600.0,
    )
    assert res.restarts == 1
    # same chunk count and same sum of results (the order may legally
    # differ for post-crash receptions, the totals may not)
    assert res.results[0] == clean.results[0]


def test_any_source_results_survive_master_crash():
    """The rank doing the nondeterministic matching crashes: the logged
    event order forces its replay to re-match identically."""
    clean = run_job(master_worker, 4, device="v2")
    res = run_job(
        master_worker, 4, device="v2", faults=ExplicitFaults([(0.06, 0)]),
        limit=600.0,
    )
    assert res.restarts == 1
    assert res.results[0] == clean.results[0]


def test_any_source_with_checkpointing_and_crash():
    clean = run_job(master_worker, 4, device="v2",
                    params={"chunks": 16, "work": 0.08})
    res = run_job(
        master_worker, 4, device="v2", params={"chunks": 16, "work": 0.08},
        checkpointing=True, ckpt_interval=0.08,
        faults=ExplicitFaults([(0.3, 0)]), limit=600.0,
    )
    assert res.restarts == 1
    assert res.results[0] == clean.results[0]


def test_probe_counts_are_logged():
    res = run_job(probing_consumer, 2, device="v2", trace=True)
    el = res.extras["event_loggers"][0]
    recs = el.records_for(1)
    assert any(r.probes > 0 for r in recs), "unsuccessful probes not logged"


def test_probing_survives_consumer_crash():
    clean = run_job(probing_consumer, 2, device="v2")
    res = run_job(
        probing_consumer, 2, device="v2", faults=ExplicitFaults([(0.04, 1)]),
        limit=600.0,
    )
    assert res.restarts == 1
    assert res.results[1] == clean.results[1]


def test_probing_survives_producer_crash():
    clean = run_job(probing_consumer, 2, device="v2")
    res = run_job(
        probing_consumer, 2, device="v2", faults=ExplicitFaults([(0.035, 0)]),
        limit=600.0,
    )
    assert res.restarts == 1
    assert res.results[1] == clean.results[1]


def test_probing_with_checkpoint_restore():
    clean = run_job(probing_consumer, 2, device="v2", params={"items": 14})
    res = run_job(
        probing_consumer, 2, device="v2", params={"items": 14},
        checkpointing=True, ckpt_interval=0.05,
        faults=ExplicitFaults([(0.12, 1)]), limit=600.0,
    )
    assert res.restarts == 1
    assert res.results[1] == clean.results[1]
