"""Trace-level checks of the pessimistic-logging protocol invariants.

Definition 3 of the paper: a protocol is pessimistic iff no message
reception more than one process depends on is un-re-executable — which
MPICH-V2 guarantees by never *emitting* a message while any local
reception event is unacknowledged by the event logger, and by keeping a
payload copy of every emitted message on the sender.

The invariant *checkers* live in :mod:`repro.obs.audit` (the online
protocol auditor); these tests drive them — live via
``run_job(audit=True)`` and post-hoc via :func:`audit_trace` over a
recorded stream — plus a few direct scans of event-logger contents the
auditor does not see (server-side state).
"""


from repro.ft.failure import ExplicitFaults
from repro.obs.audit import audit_trace
from repro.runtime.mpirun import run_job


def traffic_prog(mpi, rounds=6):
    """A chatty all-pairs workload with compute gaps."""
    acc = float(mpi.rank)
    for r in range(rounds):
        reqs = []
        for off in (1, 2):
            peer = (mpi.rank + off) % mpi.size
            src = (mpi.rank - off) % mpi.size
            sreq = yield from mpi.isend(peer, nbytes=700, tag=r * 4 + off, data=acc)
            rreq = yield from mpi.irecv(source=src, tag=r * 4 + off)
            reqs += [sreq, rreq]
        yield from mpi.waitall(reqs)
        acc += sum(
            q.message.data for q in reqs if getattr(q, "message", None) is not None
        )
        yield from mpi.compute(seconds=0.005)
    out = yield from mpi.allreduce(value=round(acc, 6), nbytes=8)
    return round(out, 6)


def test_no_send_before_preceding_events_logged():
    """The WAITLOGGED gate: at every daemon transmission by rank p, every
    delivery p made strictly earlier is already acknowledged by the event
    logger (Section 4.5: "this information must be sent and acknowledged
    by the event logger before the node can... perform a send action").
    Checked post-hoc by the auditor over a recorded stream."""
    res = run_job(traffic_prog, 4, device="v2", trace=True)
    report = audit_trace(res.tracer)
    assert report.count("waitlogged") == 0, report.violations
    assert report.checks["waitlogged"] > 10  # actually exercised
    assert report.clean


def test_online_audit_matches_posthoc_scan():
    """The live subscriber and the post-hoc scan run the same checkers
    over the same stream: identical verdicts and check counts."""
    res = run_job(traffic_prog, 4, device="v2", trace=True, audit=True)
    posthoc = audit_trace(res.tracer)
    assert res.audit.verdict == posthoc.verdict == "clean"
    assert res.audit.checks == posthoc.checks
    assert res.audit.events_seen == posthoc.events_seen
    assert res.audit.vclocks == posthoc.vclocks


def test_every_delivery_has_a_logged_event():
    """Fault-free run: every remote delivery ends up on the event logger."""
    res = run_job(traffic_prog, 4, device="v2", trace=True)
    el = res.extras["event_loggers"][0]
    deliveries = {}
    for rec in res.tracer.records:
        if rec.kind == "adi.deliver" and rec["src"] != rec["rank"]:
            deliveries[rec["rank"]] = deliveries.get(rec["rank"], 0) + 1
    for rank, n in deliveries.items():
        stored = len(el.records_for(rank))
        # the simulation stops the instant the job completes: the very
        # last delivery's event may still be in flight to the logger (it
        # gates no further send, so the protocol does not need it yet)
        assert n - 1 <= stored <= n


def test_event_records_carry_unique_message_ids():
    res = run_job(traffic_prog, 4, device="v2", trace=True)
    el = res.extras["event_loggers"][0]
    for rank in range(4):
        recs = el.records_for(rank)
        ids = [(r.src, r.sclock) for r in recs]
        assert len(set(ids)) == len(ids)
        rclocks = [r.rclock for r in recs]
        assert rclocks == sorted(rclocks)
        assert rclocks == list(range(1, len(rclocks) + 1))


def test_saved_covers_all_unacked_receptions_of_peers():
    """Lemma 1's practical face: at any point, a message whose event is
    logged can be served from its sender's SAVED set (fault-free run,
    no checkpoint GC)."""
    res = run_job(traffic_prog, 4, device="v2", trace=True)
    el = res.extras["event_loggers"][0]
    disp = res.extras["dispatcher"]
    for rank in range(4):
        for rec in el.records_for(rank):
            sender = disp.states[rec.src].daemon
            assert sender.saved.has(rank, rec.sclock), (
                f"event ({rec.src}->{rank}, sclock={rec.sclock}) logged but "
                "not retrievable from the sender"
            )


def test_replayed_execution_emits_no_duplicate_events():
    """A replay re-logs nothing: each rank's event log still holds each
    message id exactly once, and the same *set* of messages as a clean
    run (live ranks may interleave deliveries differently after the
    fault — a different but equivalent execution — so only the sets are
    comparable, not the orders)."""
    clean = run_job(traffic_prog, 4, device="v2")
    el_clean = clean.extras["event_loggers"][0]
    faulty = run_job(
        traffic_prog, 4, device="v2", faults=ExplicitFaults([(0.01, 2)])
    )
    el_faulty = faulty.extras["event_loggers"][0]
    assert faulty.restarts == 1
    for rank in range(4):
        a = {(r.src, r.sclock) for r in el_clean.records_for(rank)}
        b = {(r.src, r.sclock) for r in el_faulty.records_for(rank)}
        assert len(b) == len(el_faulty.records_for(rank))  # no duplicates
        # same messages up to the in-flight tail at job end; the crashed
        # rank's re-executed sends may renumber post-crash messages, so
        # compare counts rather than exact ids beyond the logged prefix
        assert abs(len(a) - len(b)) <= 1


def test_duplicates_are_discarded_not_delivered():
    """Phase C: re-sent old messages are dropped by the HR watermark —
    the auditor's orphan rule (no message id delivered twice within one
    incarnation), checked live across a fault and recovery."""
    res = run_job(
        traffic_prog, 4, device="v2", audit=True,
        faults=ExplicitFaults([(0.01, 1)]),
    )
    assert res.restarts == 1
    assert res.audit.count("orphan") == 0, res.audit.violations
    assert res.audit.checks["orphan"] > 0
    assert res.audit.clean


def test_results_identical_under_fault(
):
    clean = run_job(traffic_prog, 4, device="v2")
    faulty = run_job(
        traffic_prog, 4, device="v2", faults=ExplicitFaults([(0.012, 3)])
    )
    assert faulty.results == clean.results
