"""Volatile infrastructure: partitions, degradation, link flaps, and
crash/restart of the event logger and checkpoint server.

The paper assumes a reliable network and reliable auxiliary nodes; these
tests cover the runtime's behaviour when neither holds: the WAITLOGGED
gate must hold through an event-logger outage, re-pushed events must not
double-store, an interrupted checkpoint push must leave the previous
image intact, and every recovery path must retry with deterministic
backoff.
"""

import pytest

from repro.core.clocks import ClockState, EventRecord
from repro.core.event_logger import EventLoggerServer
from repro.core.replay import CheckpointImage
from repro.devices.base import segment_sizes
from repro.ft import (
    ChurnFaults,
    ExplicitFaults,
    LinkFlapFaults,
    PartitionFaults,
    ServiceFaults,
    ServiceSupervisor,
)
from repro.ft.ckpt_server import CheckpointServer
from repro.runtime.cluster import Cluster
from repro.runtime.config import DEFAULT_TESTBED
from repro.runtime.fabric import ConnectionRefused, Fabric
from repro.runtime.mpirun import run_job
from repro.runtime.retry import RetryPolicy
from repro.simnet import Host, Network, Simulator
from repro.simnet.rng import RngRegistry
from repro.simnet.streams import Disconnected
from repro.store import assemble_image, chunk_image


def ring(mpi, rounds=6, work=0.05):
    nxt, prv = (mpi.rank + 1) % mpi.size, (mpi.rank - 1) % mpi.size
    token = mpi.rank
    for r in range(rounds):
        sreq = yield from mpi.isend(nxt, nbytes=256, tag=r, data=token)
        rreq = yield from mpi.irecv(source=prv, tag=r)
        yield from mpi.waitall([sreq, rreq])
        token = rreq.message.data + 1
        yield from mpi.compute(seconds=work)
    return token


# -- network-level fault primitives -----------------------------------------


def make_net():
    sim = Simulator()
    net = Network(sim)
    a = net.add_host(Host(sim, "a"))
    b = net.add_host(Host(sim, "b"))
    return sim, net, a, b


def test_partition_defers_segments_until_heal():
    sim, net, a, b = make_net()
    net.partition([a], [b], duration=2.0)
    arrivals = []
    net.transfer(a, b, 1000, lambda: arrivals.append(sim.now))
    sim.run()
    assert net.segments_deferred == 1
    assert len(arrivals) == 1
    # released at heal time, then the normal transfer cost applies
    assert arrivals[0] == pytest.approx(2.0 + net.one_way_time(1000))


def test_partition_is_directionless_and_heals():
    sim, net, a, b = make_net()
    win = net.partition([a], [b], duration=1.0)
    assert win.separates("a", "b") and win.separates("b", "a")
    assert net.partitioned(a, b) and net.partitioned(b, a)
    sim.run()
    assert not net.partitioned(a, b)
    # traffic after heal moves normally
    t = net.transfer(a, b, 100, lambda: None)
    assert t == pytest.approx(sim.now + net.one_way_time(100))


def test_loopback_ignores_partitions():
    sim, net, a, b = make_net()
    net.partition([a], [b], duration=5.0)
    arrivals = []
    net.transfer(a, a, 100, lambda: arrivals.append(sim.now))
    sim.run(until=1.0)
    assert len(arrivals) == 1  # same-host traffic never crosses the cut


def test_overlapping_partitions_compose():
    sim, net, a, b = make_net()
    net.partition([a], [b], duration=1.0)
    net.partition([a], [b], duration=3.0)
    arrivals = []
    net.transfer(a, b, 100, lambda: arrivals.append(sim.now))
    sim.run()
    # the first heal re-queues the segment into the second window
    assert arrivals[0] >= 3.0
    assert net.segments_deferred == 2


def test_degrade_window_slows_transfers():
    sim, net, a, b = make_net()
    t_plain = net.one_way_time(50_000)
    net.degrade([a], duration=1.0, bw_factor=4.0)
    t_slow = net.transfer(a, b, 50_000, lambda: None)
    assert t_slow > 2.0 * t_plain
    sim.run()
    t_after = net.transfer(a, b, 50_000, lambda: None) - sim.now
    assert t_after == pytest.approx(t_plain, rel=0.01)


def test_connect_refused_across_partition_then_ok():
    cluster = Cluster(DEFAULT_TESTBED, seed=0)
    fabric = Fabric(cluster)
    svc = cluster.add_aux("svc")
    cn = cluster.add_cn("cn0")
    fabric.listen("x", svc)
    cluster.net.partition([cn], [svc], duration=1.0)
    with pytest.raises(ConnectionRefused):
        fabric.connect(cn, "x")
    cluster.sim.run()
    assert fabric.connect(cn, "x") is not None


def test_break_links_raises_disconnected_with_hosts_up():
    cluster = Cluster(DEFAULT_TESTBED, seed=0)
    sim = cluster.sim
    a = cluster.add_cn("a")
    b = cluster.add_cn("b")
    stream = cluster.connect(a, b)
    seen = []

    def reader():
        try:
            yield stream.end_for(b).read()
        except Disconnected as exc:
            seen.append(exc)

    sim.spawn(reader())
    sim.after(0.1, lambda: cluster.net.break_links(a, b))
    sim.run(until=1.0)
    assert len(seen) == 1
    assert not a.failed and not b.failed
    assert cluster.net.links_broken == 1


def test_retry_policy_is_deterministic_per_stream():
    policy = RetryPolicy(base=0.05, factor=2.0, cap=2.0, jitter=0.25)
    d1 = [policy.delay(i, RngRegistry(7).stream("x")) for i in range(8)]
    d2 = [policy.delay(i, RngRegistry(7).stream("x")) for i in range(8)]
    assert d1 == d2
    # capped, and jitter stays within the advertised band
    for i, d in enumerate(d1):
        nominal = min(2.0, 0.05 * 2.0**i)
        assert 0.75 * nominal <= d <= 1.25 * nominal


def test_retry_policy_from_config_tracks_knobs():
    cfg = DEFAULT_TESTBED.with_(reconnect_base=0.1, reconnect_cap=0.4,
                                reconnect_jitter=0.0)
    policy = RetryPolicy.from_config(cfg, max_tries=3)
    assert policy.max_tries == 3
    assert [policy.delay(i) for i in range(4)] == [0.1, 0.2, 0.4, 0.4]


# -- event-logger outage ------------------------------------------------------


def test_event_logger_stop_start_keeps_durable_events():
    cluster = Cluster(DEFAULT_TESTBED, seed=0)
    sim = cluster.sim
    fabric = Fabric(cluster)
    svc = cluster.add_aux("svc")
    cn = cluster.add_cn("cn0")
    el = EventLoggerServer(sim, svc, fabric, cluster.cfg)
    el.start()
    got = {}

    def client():
        end = fabric.connect(cn, "el:0", hello=("DAEMON", 0, 0))
        recs = [EventRecord(i, src=1, sclock=i, probes=0) for i in (1, 2, 3)]
        yield from end.write(60, ("EVENT", 0, 0, recs))
        _, ack = yield end.read()
        got["ack"] = ack
        # crash the service; this connection dies with it
        el.stop()
        with pytest.raises(Disconnected):
            yield from end.write(60, ("EVENT", 0, 1, recs))
        el.start()
        end = fabric.connect(cn, "el:0", hello=("DAEMON", 0, 1))
        yield from end.write(16, ("DOWNLOAD", 0, 0))
        _, (tag, events, _piggy) = yield end.read()
        got["events"] = events

    sim.spawn(client())
    sim.run()
    assert got["ack"] == ("ACK", 0, 3)
    assert [e.rclock for e in got["events"]] == [1, 2, 3]


def test_event_logger_repush_is_idempotent():
    cluster = Cluster(DEFAULT_TESTBED, seed=0)
    sim = cluster.sim
    fabric = Fabric(cluster)
    svc = cluster.add_aux("svc")
    cn = cluster.add_cn("cn0")
    el = EventLoggerServer(sim, svc, fabric, cluster.cfg)
    el.start()

    def client():
        end = fabric.connect(cn, "el:0", hello=("DAEMON", 0, 0))
        recs = [EventRecord(i, src=1, sclock=i, probes=0) for i in (1, 2)]
        for bid in range(3):  # the same batch, re-pushed after "reconnects"
            yield from end.write(40, ("EVENT", 0, bid, recs))
            yield end.read()

    sim.spawn(client())
    sim.run()
    assert el.events_stored == 2
    assert el.dup_events == 4
    assert el.records_received == 6
    assert el.rclock_hw == {0: 2}
    assert sum(len(v) for v in el.events.values()) == 2


def test_el_outage_gate_holds_and_no_double_store():
    """Crash the event logger mid-run: the job must finish with correct
    results, and reconnect re-pushes must not double-store any event."""
    expect = run_job(ring, 3, device="v2",
                     params={"rounds": 20, "work": 0.05}).results
    res = run_job(
        ring, 3, device="v2", params={"rounds": 20, "work": 0.05},
        faults=[ServiceFaults([(0.3, "el:0", 0.8)])],
        limit=600.0, audit=True,
    )
    assert res.results == expect
    assert res.audit.clean
    assert res.restarts == 0
    el = res.extras["event_loggers"][0]
    sup = res.extras["supervisor"]
    assert sup.crashes == 1 and sup.restarts == 1
    # no rank restarts and no pruning: every stored event is fresh exactly
    # once, so the store matches the per-rank high-water marks
    assert el.events_stored == sum(len(v) for v in el.events.values())
    assert el.events_stored == sum(el.rclock_hw.values())
    assert res.metrics.total("outage.retries") > 0
    assert res.metrics.total("outage.reconnects") >= 3  # every daemon
    assert res.metrics.total("outage.el_down_s") > 0


def test_el_outage_while_job_idle_is_harmless():
    """An EL crash during a compute-only stretch stalls nothing."""
    res = run_job(
        ring, 2, device="v2", params={"rounds": 2, "work": 0.6},
        faults=[ServiceFaults([(0.5, "el:0", 0.5)])],
        limit=600.0,
    )
    assert res.results == [2, 3]


# -- checkpoint-server outage -------------------------------------------------


def _image(rank, seq, footprint=200_000):
    return CheckpointImage(rank=rank, seq=seq, op_count=seq, clock=ClockState(),
                           saved=[], delivery_log=[], app_footprint=footprint)


def test_ckpt_server_mid_push_crash_keeps_previous_image():
    """The docstring's claim, under a *service* crash: a manifest commits
    only when every chunk it references arrived, so a push interrupted by
    the crash leaves the previous image intact."""
    cluster = Cluster(DEFAULT_TESTBED, seed=0)
    sim = cluster.sim
    fabric = Fabric(cluster)
    svc = cluster.add_aux("svc")
    cn = cluster.add_cn("cn0")
    cs = CheckpointServer(sim, svc, fabric, cluster.cfg)
    cs.start()
    cfg = cluster.cfg
    got = {}

    def push(end, image):
        manifest, chunks = chunk_image(image, cfg.ckpt_chunk_bytes)
        for digest in manifest.digests:
            chunk = chunks[digest]
            sizes = segment_sizes(max(1, chunk.nbytes), cfg.chunk_bytes)
            for nbytes in sizes[:-1]:
                yield from end.write(nbytes, None)
            yield from end.write(sizes[-1], ("CHUNK", chunk))
        yield from end.write(manifest.wire_bytes, ("COMMIT", manifest))
        yield end.read()  # STORED

    def read_record(end):
        while True:
            _, msg = yield end.read()
            if msg is not None:
                return msg

    def client():
        end = fabric.connect(cn, "cs:0")
        yield from push(end, _image(0, seq=1))
        # second push: crash the server after the first few chunks
        sim.after(0.005, cs.stop)
        with pytest.raises(Disconnected):
            yield from push(end, _image(0, seq=2))
        cs.start()
        end = fabric.connect(cn, "cs:0")
        yield from end.write(16, ("FETCH", 0, 0, ()))
        _, manifest = yield from read_record(end)
        have = {}
        while set(manifest.digests) - set(have):
            _, chunk = yield from read_record(end)
            have[chunk.digest] = chunk
        got["fetched"] = assemble_image(manifest, have)
        # a clean retry of the interrupted push now supersedes it
        yield from push(end, _image(0, seq=2))
        got["final"] = cs.images[0].seq

    sim.spawn(client())
    sim.run()
    assert got["fetched"].seq == 1  # previous image intact after the crash
    assert got["final"] == 2


def test_ckpt_push_aborts_cleanly_and_is_retried():
    """A CS outage mid-run: the interrupted push aborts (previous image
    intact), the scheduler re-orders it, and the retry completes."""
    from repro.workloads import nas

    mod = nas.KERNELS["cg"]
    res = run_job(
        mod.program, 4, device="v2", params={"klass": "S"}, seed=1,
        checkpointing=True, ckpt_policy="round_robin", ckpt_continuous=True,
        faults=[ServiceFaults([(0.25, "cs:0", 0.5)])],
        limit=1e8,
    )
    sched = res.extras["scheduler"]
    assert res.metrics.total("ckpt.aborted") >= 1
    assert sched.ckpt_retries >= 1
    assert res.checkpoints >= 1  # the retried push landed
    assert res.extras["checkpoint_server"].images  # durable store intact


def test_cs_replica_crash_mid_restart_fails_over():
    """The store acceptance scenario: 3 replicated checkpoint servers
    with write quorum 2; one replica is down exactly when a killed rank
    restarts.  The fetch fails over to a surviving replica, recovery
    completes with correct results, and the audit is clean."""
    expect = run_job(ring, 4, device="v2",
                     params={"rounds": 20, "work": 0.1}).results
    cfg = DEFAULT_TESTBED.with_(ckpt_servers=3, ckpt_replicas=2)
    res = run_job(
        ring, 4, device="v2", cfg=cfg, params={"rounds": 20, "work": 0.1},
        checkpointing=True, ckpt_interval=0.1, ckpt_continuous=True,
        faults=[
            ExplicitFaults([(1.0, 2)]),
            # down through the whole detect+respawn+fetch window
            ServiceFaults([(0.9, "cs:0", 3.0)]),
        ],
        limit=600.0, audit=True,
    )
    assert res.results == expect
    assert res.audit.clean
    assert res.restarts >= 1
    assert res.checkpoints >= 1
    # the restart was served by a failover target, not the dead replica
    assert res.metrics.total("store.failover") >= 1
    assert res.metrics.total("store.fetch_bytes") > 0
    assert len(res.extras["checkpoint_servers"]) == 3


# -- composed plans and determinism -------------------------------------------


def test_partition_faults_ride_out_the_cut():
    expect = run_job(ring, 4, device="v2",
                     params={"rounds": 20, "work": 0.05}).results
    res = run_job(
        ring, 4, device="v2", params={"rounds": 20, "work": 0.05},
        faults=[PartitionFaults([(0.4, (0,), 0.8)])],
        limit=600.0, audit=True,
    )
    assert res.results == expect
    assert res.audit.clean
    assert res.restarts == 0  # nobody died: the cut only delays traffic
    assert res.metrics.total("net.partitions") == 1
    assert res.metrics.total("net.deferred_segments") > 0


def test_heartbeat_suspects_partitioned_rank_then_clears():
    """A partition longer than hb_timeout must flag the quiet rank as
    suspect on both sides — the daemon's session turns hb_suspect
    (session.hb_timeouts) and the dispatcher's monitor counts it
    (disp.suspected) — and the first heartbeat after the heal clears
    the suspicion; the socket detector never fires (no restarts)."""
    expect = run_job(ring, 4, device="v2",
                     params={"rounds": 20, "work": 0.05}).results
    res = run_job(
        ring, 4, device="v2", params={"rounds": 20, "work": 0.05},
        faults=[PartitionFaults([(0.4, (0,), 2.0)])],
        limit=600.0,
    )
    assert res.results == expect
    assert res.restarts == 0
    assert res.stat("disp.suspected") >= 1
    assert res.stat("session.hb_timeouts") >= 1
    disp = res.extras["dispatcher"]
    assert not disp.suspects  # healed: the resumed PINGs cleared it
    assert 0 in disp.last_hb  # the partitioned rank reported back in


def test_degrade_window_surfaces_backpressure_gauges():
    """Bulk traffic under a DegradeWindow fills stream windows; the
    session layer must surface the stalled-write time and counts that
    were previously invisible."""
    cluster = Cluster(DEFAULT_TESTBED, seed=0)
    fabric = Fabric(cluster)
    a = cluster.add_cn("cn0")
    b = cluster.add_aux("svc-host")

    from repro.runtime.session import ServiceBase, Session

    class Sink(ServiceBase):
        metric_ns = "sink"

        def _serve(self, end, hello):
            while True:
                try:
                    yield from self._read_record(end)
                except Disconnected:
                    return

    svc = Sink(cluster.sim, b, fabric, "sink:0", metrics=cluster.metrics)
    svc.start()
    sess = Session(
        cluster.sim, fabric, a, "sink:0", metrics=cluster.metrics,
    )
    # a 20x slower fabric: 100 KB pushes outlive the 64 KiB window
    cluster.net.degrade(None, duration=60.0, bw_factor=20.0)
    done = {}

    def run():
        sess.connect_now()
        for i in range(5):
            yield from sess.write(100_000, ("BULK", i))
        done["ok"] = True

    cluster.sim.spawn(run())
    cluster.sim.run()
    assert done["ok"]
    assert cluster.metrics.total("session.stalled_writes") >= 3
    # with a 20x bandwidth cut the stall time is macroscopic
    assert cluster.metrics.total("session.stalled_write_s") > 0.1


def test_link_flaps_resync_without_restarts():
    expect = run_job(ring, 4, device="v2",
                     params={"rounds": 24, "work": 0.05}).results
    flaps = LinkFlapFaults(interval=0.4, count=2, seed=5)
    res = run_job(
        ring, 4, device="v2", params={"rounds": 24, "work": 0.05},
        faults=[flaps], limit=600.0, audit=True,
    )
    assert res.results == expect
    assert res.audit.clean
    assert res.restarts == 0
    assert len(flaps.injected) == 2
    assert res.metrics.total("net.links_broken") >= 2
    assert res.metrics.total("outage.reconnects") >= 1


def test_churn_same_seed_is_deterministic():
    def once():
        churn = ChurnFaults(mean_lifetime=1.2, seed=3, max_faults=3,
                            check_interval=0.1)
        res = run_job(
            ring, 4, device="v2", params={"rounds": 12, "work": 0.15},
            checkpointing=True, ckpt_interval=0.2,
            faults=churn, limit=3600.0,
        )
        return churn.injected, res.results, res.elapsed

    inj1, results1, t1 = once()
    inj2, results2, t2 = once()
    assert inj1 == inj2
    assert results1 == results2
    assert t1 == t2


def test_combined_plan_acceptance_cg():
    """The issue's acceptance scenario: CG-A-4 with two rank kills, one
    event-logger crash/restart and one 5-second partition — completes
    with correct results and a clean audit."""
    from repro.workloads import nas

    mod = nas.KERNELS["cg"]
    base = run_job(mod.program, 4, device="v2", params={"klass": "A"},
                   seed=1, limit=1e9)
    res = run_job(
        mod.program, 4, device="v2", params={"klass": "A"}, seed=1,
        checkpointing=True, ckpt_policy="random", ckpt_continuous=True,
        faults=[
            ExplicitFaults([(1.2, 1), (2.5, 3)]),
            ServiceFaults([(0.8, "el:0", 1.0)]),
            PartitionFaults([(1.8, (0, 2), 5.0)]),
        ],
        limit=1e9, audit=True,
    )
    assert res.results == base.results
    assert res.audit.clean
    assert res.restarts == 2
    assert res.extras["supervisor"].restarts == 1
    assert res.metrics.total("net.partitions") == 1
    assert res.metrics.total("outage.retries") > 0
    assert res.metrics.total("outage.backoff_s") > 0
    injected = res.extras["faults"].injected
    assert len(injected) == 4  # 2 kills + 1 service crash + 1 partition


def test_service_faults_skip_unknown_services():
    plan = ServiceFaults([(0.2, "nope:9", 0.5)])
    res = run_job(
        ring, 2, device="v2", params={"rounds": 4, "work": 0.05},
        faults=[plan], limit=600.0,
    )
    assert res.results == [4, 5]
    assert plan.injected == []


# -- event-logger replication -------------------------------------------------


def test_el_replica_kill_quorum_rides_through():
    """Kill one of three replicas mid-run: the quorum (2 of 3) keeps the
    WAITLOGGED gate moving, the relaunch resyncs from its peers, and the
    job finishes with correct results, a clean audit and no restarts."""
    cfg = DEFAULT_TESTBED.with_(el_replicas=3)
    expect = run_job(ring, 3, device="v2", cfg=cfg,
                     params={"rounds": 30, "work": 0.05}).results
    res = run_job(
        ring, 3, device="v2", cfg=cfg, params={"rounds": 30, "work": 0.05},
        faults=[ServiceFaults([(0.3, "el:0.1", 0.4)])],
        limit=600.0, audit=True,
    )
    assert res.results == expect
    assert res.audit.clean
    assert res.audit.checks["el-quorum"] > 0
    assert res.restarts == 0  # no rank ever restarted for an EL fault
    sup = res.extras["supervisor"]
    assert sup.crashes == 1 and sup.restarts == 1
    assert res.metrics.total("el.failovers") >= 1
    assert res.metrics.total("el.resyncs") == 1
    assert res.metrics.total("el.events_resynced") > 0


def test_el_back_to_back_crashes_no_double_delivery():
    """A second crash landing while clients are still re-pushing events
    unacked from the first: the (rank, rclock) dedup must keep every
    replica's store exact, and no gate may clear below quorum."""
    cfg = DEFAULT_TESTBED.with_(el_replicas=3)
    expect = run_job(ring, 3, device="v2", cfg=cfg,
                     params={"rounds": 30, "work": 0.05}).results
    res = run_job(
        ring, 3, device="v2", cfg=cfg, params={"rounds": 30, "work": 0.05},
        faults=[ServiceFaults([(0.3, "el:0", 0.3), (0.7, "el:0", 0.3)])],
        limit=600.0, audit=True,
    )
    assert res.results == expect
    assert res.audit.clean  # el-quorum: no early WAITLOGGED clears
    assert res.restarts == 0
    sup = res.extras["supervisor"]
    assert sup.crashes == 2 and sup.restarts == 2
    # the second relaunch may still be resyncing when the job completes
    assert res.metrics.total("el.resyncs") >= 1
    # per-replica store exactness: every rank's events form the contiguous
    # prefix 1..hw — a double-delivered re-push would inflate dup counts,
    # a lost one would leave a hole below the high-water mark
    for el in res.extras["event_loggers"]:
        for rank, evs in el.events.items():
            hw = el.rclock_hw.get(rank, 0)
            assert sorted(evs) == list(range(1, hw + 1))


def test_el_replica_resync_pulls_missing_events():
    """A restarted replica whose in-memory store died refills from a live
    peer before serving: DOWNLOADs against it see the full log."""
    cluster = Cluster(DEFAULT_TESTBED, seed=0)
    sim = cluster.sim
    fabric = Fabric(cluster)
    host_a = cluster.add_aux("ela")
    host_b = cluster.add_aux("elb")
    cn = cluster.add_cn("cn0")
    el_a = EventLoggerServer(sim, host_a, fabric, cluster.cfg, name="el:0",
                             shard=0, peer_names=("el:0.1",))
    el_b = EventLoggerServer(sim, host_b, fabric, cluster.cfg, name="el:0.1",
                             shard=0, peer_names=("el:0",))
    el_a.start()
    el_b.start()
    got = {}

    def recs(lo, hi):
        return [EventRecord(i, src=1, sclock=i, probes=0)
                for i in range(lo, hi + 1)]

    def client():
        ends = {}
        for name in ("el:0", "el:0.1"):
            ends[name] = fabric.connect(cn, name, hello=("DAEMON", 0, 0))
        for name in ("el:0", "el:0.1"):
            yield from ends[name].write(60, ("EVENT", 0, 0, recs(1, 3)))
            yield ends[name].read()
        # replica b crashes (store lost) while 4..6 land on a only
        el_b.stop()
        yield from ends["el:0"].write(60, ("EVENT", 0, 1, recs(4, 6)))
        yield ends["el:0"].read()
        el_b.start()  # relaunch resyncs from el:0
        end = fabric.connect(cn, "el:0.1", hello=("DAEMON", 0, 1))
        yield from end.write(16, ("DOWNLOAD", 0, 0))
        _, (tag, events, _piggy) = yield end.read()
        got["events"] = events

    sim.spawn(client())
    sim.run()
    assert [e.rclock for e in got["events"]] == [1, 2, 3, 4, 5, 6]
    assert el_b.rclock_hw == {0: 6}


# -- V1 channel-memory supervision ---------------------------------------------


def test_v1_supervised_cm_crash_replays_through():
    """A supervised Channel Memory crash/relaunch: clients reconnect with
    backoff, re-push their store history (msgid-deduped) and rewind the
    serve cursor — the job finishes with faultless results and no rank
    restarts."""
    expect = run_job(ring, 4, device="v1",
                     params={"rounds": 16, "work": 0.05}).results
    res = run_job(
        ring, 4, device="v1", params={"rounds": 16, "work": 0.05},
        faults=[ServiceFaults([(0.25, "cm:0", 0.8)])],
        limit=600.0,
    )
    assert res.results == expect
    assert res.restarts == 0
    assert res.metrics.total("svc.crashes") == 1
    assert res.metrics.total("svc.restarts") == 1
    assert res.metrics.total("v1.cm_reconnects") >= 1
    # the CM's durable msgid dedup absorbed the history re-push: serve
    # cursors never ran past what the durable log holds
    cm = res.extras["channel_memories"][0]
    for rank, cur in cm.cursor.items():
        assert cur <= len(cm.log.get(rank, ()))


def test_supervisor_ignores_replaced_or_dead_services():
    cluster = Cluster(DEFAULT_TESTBED, seed=0)
    fabric = Fabric(cluster)
    svc_host = cluster.add_aux("svc")
    el = EventLoggerServer(cluster.sim, svc_host, fabric, cluster.cfg)
    el.start()
    sup = ServiceSupervisor(cluster.sim, cluster.cfg)
    sup.register(el.name, el)
    sup.crash(el.name, downtime=0.2)
    # replace the registration while the crashed instance is down
    el2 = EventLoggerServer(cluster.sim, svc_host, fabric, cluster.cfg,
                            name="el:0")
    sup.register(el.name, el2)
    cluster.sim.run()
    assert sup.crashes == 1
    assert sup.restarts == 0  # the stale relaunch was discarded
